(** C code emission.

    Exo's output is "plain C code with intrinsic instructions" that the user
    compiles with whatever toolchain they like — the paper counts this
    compiler-independence among Exo's advantages over TVM/Halide. This
    module renders a scheduled procedure to exactly that:

    - tensor arguments become flat pointers with linearized row-major
      indexing (dims may be symbolic sizes such as [KC]);
    - [DRAM] allocations become stack arrays;
    - register-memory allocations become arrays of the ISA's vector type
      (the lanes dimension folds into the type, [f32\[12, 2, 4\] @ Neon] →
      [float32x4_t C_reg\[12\]\[2\]]);
    - instruction calls are rendered through the instruction's [@instr]
      format string, filling each [{param_data}] hole with the operand's
      C lvalue and each [{param}] hole with a scalar expression.

    Direct (non-instruction) access to a register-memory buffer is rejected:
    a kernel must be fully vectorized before it can be emitted for a vector
    register class, which is the same discipline Exo's memory checks impose. *)

open Exo_ir
open Ir

exception Codegen_error of string

let err fmt = Fmt.kstr (fun s -> raise (Codegen_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Unique C names                                                      *)

type names = { taken : (string, int) Hashtbl.t; tbl : string Sym.Tbl.t }

let mk_names () = { taken = Hashtbl.create 32; tbl = Sym.Tbl.create 32 }

let cname (n : names) (s : Sym.t) : string =
  match Sym.Tbl.find_opt n.tbl s with
  | Some x -> x
  | None ->
      let base = Sym.name s in
      let x =
        match Hashtbl.find_opt n.taken base with
        | None ->
            Hashtbl.replace n.taken base 0;
            base
        | Some k ->
            Hashtbl.replace n.taken base (k + 1);
            Fmt.str "%s_%d" base (k + 1)
      in
      Sym.Tbl.replace n.tbl s x;
      x

(* ------------------------------------------------------------------ *)
(* Buffer layout info                                                  *)

type buf_info = { bdims : expr list; bmem : Mem.t; written : bool }

let collect_buffers (p : proc) : buf_info Sym.Tbl.t =
  let tbl = Sym.Tbl.create 16 in
  let written = ref Sym.Set.empty in
  iter_stmts
    (fun s ->
      match s with
      | SAssign (b, _, _) | SReduce (b, _, _) -> written := Sym.Set.add b !written
      | SCall (callee, args) ->
          (* windows bound to parameters the instruction writes *)
          List.iteri
            (fun i a ->
              match (a, List.nth_opt callee.p_args i) with
              | AWin w, Some param ->
                  let writes_param =
                    List.exists
                      (function
                        | SAssign (x, _, _) | SReduce (x, _, _) ->
                            Sym.equal x param.a_name
                        | _ -> false)
                      callee.p_body
                    ||
                    (* conservative: nested writes *)
                    let acc = ref false in
                    iter_stmts
                      (function
                        | SAssign (x, _, _) | SReduce (x, _, _)
                          when Sym.equal x param.a_name ->
                            acc := true
                        | _ -> ())
                      callee.p_body;
                    !acc
                  in
                  if writes_param then written := Sym.Set.add w.wbuf !written
              | _ -> ())
            args
      | _ -> ())
    p.p_body;
  List.iter
    (fun (a : arg) ->
      match a.a_typ with
      | TTensor (_, dims) ->
          Sym.Tbl.replace tbl a.a_name
            { bdims = dims; bmem = a.a_mem; written = Sym.Set.mem a.a_name !written }
      | TScalar _ ->
          Sym.Tbl.replace tbl a.a_name
            { bdims = []; bmem = a.a_mem; written = Sym.Set.mem a.a_name !written }
      | _ -> ())
    p.p_args;
  iter_stmts
    (function
      | SAlloc (b, _, dims, mem) ->
          Sym.Tbl.replace tbl b
            { bdims = dims; bmem = mem; written = Sym.Set.mem b !written }
      | _ -> ())
    p.p_body;
  tbl

(* ------------------------------------------------------------------ *)
(* Expression rendering                                                *)

type ctx = { names : names; bufs : buf_info Sym.Tbl.t }

let buf_info ctx b =
  match Sym.Tbl.find_opt ctx.bufs b with
  | Some i -> i
  | None -> err "unknown buffer %s" (Sym.name b)

let is_reg_mem mem = Exo_isa.Memories.is_register_mem mem

(** Linearized index expression: [i0*s0 + i1*s1 + ...] with row-major
    strides over (possibly symbolic) dims. *)
let rec linear_index ctx (dims : expr list) (idx : expr list) : string =
  let rec strides = function
    | [] | [ _ ] -> []
    | _ :: rest -> rest :: strides rest
  in
  let terms =
    List.map2
      (fun i later ->
        let base = render_expr ctx ~prec:2 i in
        List.fold_left
          (fun acc d -> Fmt.str "%s * %s" acc (render_expr ctx ~prec:2 d))
          base later)
      idx
      (match idx with [] -> [] | _ -> strides dims @ [ [] ])
  in
  match terms with [] -> "0" | t :: ts -> List.fold_left (Fmt.str "%s + %s") t ts

(** [prec]: 0 = comma-safe, 1 = additive context, 2 = multiplicative. *)
and render_expr ctx ?(prec = 0) (e : expr) : string =
  let paren needed s = if needed then "(" ^ s ^ ")" else s in
  match e with
  | Int n -> if n < 0 then paren (prec > 1) (string_of_int n) else string_of_int n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.1ff" f
      else Fmt.str "%.9gf" f
  | Var v -> cname ctx.names v
  | Read (b, idx) ->
      let info = buf_info ctx b in
      if is_reg_mem info.bmem then
        err "direct access to register buffer %s (kernel not fully vectorized)"
          (Sym.name b);
      Fmt.str "%s[%s]" (cname ctx.names b) (linear_index ctx info.bdims idx)
  | Binop (op, a, b) -> (
      match op with
      | Add -> paren (prec > 1) (Fmt.str "%s + %s" (render_expr ctx ~prec:1 a) (render_expr ctx ~prec:1 b))
      | Sub -> paren (prec > 1) (Fmt.str "%s - %s" (render_expr ctx ~prec:1 a) (render_expr ctx ~prec:2 b))
      | Mul -> Fmt.str "%s * %s" (render_expr ctx ~prec:2 a) (render_expr ctx ~prec:2 b)
      | Div -> Fmt.str "%s / %s" (render_expr ctx ~prec:2 a) (render_expr ctx ~prec:2 b)
      | Mod -> Fmt.str "%s %% %s" (render_expr ctx ~prec:2 a) (render_expr ctx ~prec:2 b))
  | Neg a -> Fmt.str "-%s" (render_expr ctx ~prec:2 a)
  | Cmp (op, a, b) ->
      paren (prec > 0)
        (Fmt.str "%s %s %s" (render_expr ctx ~prec:1 a) (cmpop_name op)
           (render_expr ctx ~prec:1 b))
  | And (a, b) -> paren (prec > 0) (Fmt.str "%s && %s" (render_expr ctx a) (render_expr ctx b))
  | Or (a, b) -> paren (prec > 0) (Fmt.str "%s || %s" (render_expr ctx a) (render_expr ctx b))
  | Not a -> Fmt.str "!%s" (render_expr ctx ~prec:2 a)
  | Stride _ -> err "stride() must not reach code generation"

(** Render a window operand as a C lvalue (element or vector register). *)
let render_window ctx (w : window) : string =
  let info = buf_info ctx w.wbuf in
  if is_reg_mem info.bmem then begin
    (* register array: point dims index the array; the vector (interval)
       dim must be the full innermost lane dimension *)
    let rank = List.length info.bdims in
    let idx =
      List.mapi
        (fun d wa ->
          match wa with
          | Pt e -> Some (render_expr ctx e)
          | Iv (lo, _) ->
              if d <> rank - 1 then
                err "register window on %s must vectorize the lane dimension"
                  (Sym.name w.wbuf);
              (match Simplify.expr lo with
              | Int 0 -> ()
              | _ ->
                  err "register window on %s must start at lane 0" (Sym.name w.wbuf));
              None)
        w.widx
    in
    List.fold_left
      (fun acc -> function Some i -> Fmt.str "%s[%s]" acc i | None -> acc)
      (cname ctx.names w.wbuf)
      idx
  end
  else
    (* addressable memory: element lvalue at the window base *)
    let base =
      List.map (function Pt e -> e | Iv (lo, _) -> lo) w.widx
    in
    Fmt.str "%s[%s]" (cname ctx.names w.wbuf) (linear_index ctx info.bdims base)

(** Fill an [@instr] format string. Holes: [{p_data}] (operand lvalue) and
    [{p}] (scalar expression). *)
let render_call ctx (callee : proc) (args : call_arg list) : string =
  let info =
    match callee.p_instr with
    | Some i -> i
    | None -> err "call to non-instruction %s survived scheduling" callee.p_name
  in
  let value_of (param : arg) (a : call_arg) : string =
    match a with
    | AExpr e -> render_expr ctx e
    | AWin w -> (
        match param.a_typ with
        | TScalar _ | TTensor _ ->
            (* final memory strictness: a register parameter must be fed a
               register window by emission time (set_memory must have run) *)
            let binfo = buf_info ctx w.wbuf in
            if is_reg_mem param.a_mem && not (is_reg_mem binfo.bmem) then
              err
                "call to %s: parameter %s expects %s data but %s still lives in \
                 %s (missing set_memory?)"
                callee.p_name (Sym.name param.a_name) (Mem.name param.a_mem)
                (Sym.name w.wbuf) (Mem.name binfo.bmem);
            render_window ctx w
        | _ -> err "window bound to non-tensor parameter")
  in
  let bindings =
    List.map2
      (fun (param : arg) a -> (Sym.name param.a_name, value_of param a))
      callee.p_args args
  in
  let buf = Buffer.create 64 in
  let fmtstr = info.ci_fmt in
  let n = String.length fmtstr in
  let i = ref 0 in
  while !i < n do
    (match fmtstr.[!i] with
    | '{' ->
        let j = String.index_from fmtstr !i '}' in
        let hole = String.sub fmtstr (!i + 1) (j - !i - 1) in
        let key =
          match Filename.chop_suffix_opt ~suffix:"_data" hole with
          | Some k -> k
          | None -> hole
        in
        (match List.assoc_opt key bindings with
        | Some v -> Buffer.add_string buf v
        | None -> err "instruction %s: unknown hole {%s}" callee.p_name hole);
        i := j
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec render_stmts ctx ~indent ppf (body : stmt list) : unit =
  List.iter (render_stmt ctx ~indent ppf) body

and render_stmt ctx ~indent ppf (s : stmt) : unit =
  let pad = String.make indent ' ' in
  match s with
  | SAssign (b, idx, e) ->
      let info = buf_info ctx b in
      if is_reg_mem info.bmem then
        err "direct write to register buffer %s (kernel not fully vectorized)"
          (Sym.name b);
      Fmt.pf ppf "%s%s[%s] = %s;@," pad (cname ctx.names b)
        (linear_index ctx info.bdims idx)
        (render_expr ctx e)
  | SReduce (b, idx, e) ->
      let info = buf_info ctx b in
      if is_reg_mem info.bmem then
        err "direct write to register buffer %s (kernel not fully vectorized)"
          (Sym.name b);
      Fmt.pf ppf "%s%s[%s] += %s;@," pad (cname ctx.names b)
        (linear_index ctx info.bdims idx)
        (render_expr ctx e)
  | SFor (v, lo, hi, inner) ->
      let vn = cname ctx.names v in
      Fmt.pf ppf "%sfor (int_fast32_t %s = %s; %s < %s; %s++) {@,"
        pad vn (render_expr ctx lo) vn (render_expr ctx hi) vn;
      render_stmts ctx ~indent:(indent + 2) ppf inner;
      Fmt.pf ppf "%s}@," pad
  | SAlloc (b, dt, dims, mem) -> (
      let bn = cname ctx.names b in
      match Exo_isa.Memories.lookup mem with
      | Some info ->
          (* vector register array: drop the lane dimension into the type *)
          let vt =
            match info.Exo_isa.Memories.c_vec_type dt with
            | Some t -> t
            | None ->
                err "memory %s cannot hold %s" (Mem.name mem) (Dtype.c_name dt)
          in
          let outer = List.rev (List.tl (List.rev dims)) in
          Fmt.pf ppf "%s%s %s%s;@," pad vt bn
            (String.concat ""
               (List.map (fun d -> Fmt.str "[%s]" (render_expr ctx d)) outer))
      | None ->
          if dims = [] then Fmt.pf ppf "%s%s %s;@," pad (Dtype.c_name dt) bn
          else
            Fmt.pf ppf "%s%s %s%s;@," pad (Dtype.c_name dt) bn
              (String.concat ""
                 (List.map (fun d -> Fmt.str "[%s]" (render_expr ctx d)) dims)))
  | SCall (callee, args) -> Fmt.pf ppf "%s%s@," pad (render_call ctx callee args)
  | SIf (c, t, []) ->
      Fmt.pf ppf "%sif (%s) {@," pad (render_expr ctx c);
      render_stmts ctx ~indent:(indent + 2) ppf t;
      Fmt.pf ppf "%s}@," pad
  | SIf (c, t, e) ->
      Fmt.pf ppf "%sif (%s) {@," pad (render_expr ctx c);
      render_stmts ctx ~indent:(indent + 2) ppf t;
      Fmt.pf ppf "%s} else {@," pad;
      render_stmts ctx ~indent:(indent + 2) ppf e;
      Fmt.pf ppf "%s}@," pad

(* ------------------------------------------------------------------ *)
(* Whole procedure / compilation unit                                  *)

let signature ctx (p : proc) : string =
  let params =
    List.map
      (fun (a : arg) ->
        let n = cname ctx.names a.a_name in
        match a.a_typ with
        | TSize | TIndex -> Fmt.str "int_fast32_t %s" n
        | TBool -> Fmt.str "bool %s" n
        | TScalar dt | TTensor (dt, _) ->
            let info = Sym.Tbl.find ctx.bufs a.a_name in
            if info.written then Fmt.str "%s* %s" (Dtype.c_name dt) n
            else Fmt.str "const %s* %s" (Dtype.c_name dt) n)
      p.p_args
  in
  Fmt.str "void %s(%s)" p.p_name (String.concat ", " params)

let includes_of (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (function
      | SCall (callee, _) -> (
          match callee.p_instr with
          | Some i ->
              List.iter
                (fun h -> if not (List.mem h !acc) then acc := h :: !acc)
                i.ci_includes
          | None -> ())
      | _ -> ())
    p.p_body;
  List.rev !acc

(** Render one procedure to a C definition. *)
let proc_to_c (p : proc) : string =
  let ctx = { names = mk_names (); bufs = collect_buffers p } in
  let sig_ = signature ctx p in
  Fmt.str "@[<v>%s {@,%a}@]@." sig_
    (fun ppf () ->
      List.iter
        (fun pred ->
          Fmt.pf ppf "  // assert %s@," (Pp.expr_to_string pred))
        p.p_preds;
      render_stmts ctx ~indent:2 ppf p.p_body)
    ()

(** Render a full compilation unit (includes + procedures). *)
let compilation_unit ?(header_comment = "") (procs : proc list) : string =
  let includes =
    List.sort_uniq compare (List.concat_map includes_of procs)
  in
  let b = Buffer.create 4096 in
  (* the header comment may span lines (e.g. a kernel's provenance log);
     each line gets its own [//] so the output stays a valid C comment *)
  if header_comment <> "" then
    String.split_on_char '\n' header_comment
    |> List.iter (fun line -> Buffer.add_string b (Fmt.str "// %s\n" line));
  Buffer.add_string b "#include <stdint.h>\n#include <stdbool.h>\n";
  List.iter (fun h -> Buffer.add_string b (Fmt.str "#include <%s>\n" h)) includes;
  Buffer.add_char b '\n';
  List.iter
    (fun p ->
      Buffer.add_string b (proc_to_c p);
      Buffer.add_char b '\n')
    procs;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Native JIT ABI emission                                             *)

type native_target = Nat_intrinsics | Nat_portable

let native_target_name = function
  | Nat_intrinsics -> "intrinsics"
  | Nat_portable -> "portable"

let native_sym ~(mr : int) ~(nr : int) : string = Fmt.str "exo_ukr_%dx%d" mr nr

let native_abi_signature (sym : string) : string =
  Fmt.str
    "void %s(int kc, const float *restrict A, const float *restrict B, float \
     *restrict C, int ldc)"
    sym

(* The canonical plain-C lowering of one (mr, nr) micro-kernel body under
   the native ABI: local f32 accumulators, the [k, j, i] outer-product nest
   of the reference kernel, one accumulate-back into C at the end. The
   restrict qualifiers and the ivdep pragma tell the host compiler the
   loops carry no aliasing, so it autovectorizes the i-loop for whatever
   ISA it targets — the fallback lowering for hosts without the kit's
   intrinsics, and the non-contiguous-C path of the intrinsics wrapper. *)
let portable_body (b : Buffer.t) ~(mr : int) ~(nr : int) : unit =
  let bf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  bf "  float acc[%d][%d];\n" nr mr;
  bf "  for (int j = 0; j < %d; j++)\n" nr;
  bf "    for (int i = 0; i < %d; i++)\n" mr;
  bf "      acc[j][i] = 0.0f;\n";
  bf "  for (int k = 0; k < kc; k++) {\n";
  bf "    const float *restrict a = A + (ptrdiff_t)k * %d;\n" mr;
  bf "    const float *restrict bp = B + (ptrdiff_t)k * %d;\n" nr;
  bf "    for (int j = 0; j < %d; j++) {\n" nr;
  bf "      const float bj = bp[j];\n";
  bf "#pragma GCC ivdep\n";
  bf "      for (int i = 0; i < %d; i++)\n" mr;
  bf "        acc[j][i] += a[i] * bj;\n";
  bf "    }\n";
  bf "  }\n";
  bf "  for (int j = 0; j < %d; j++)\n" nr;
  bf "    for (int i = 0; i < %d; i++)\n" mr;
  bf "      C[(ptrdiff_t)j * ldc + i] += acc[j][i];\n"

(** One native-ABI compilation unit for a whole kernel bank: an exported
    [exo_ukr_<mr>x<nr>] per kernel. Under [Nat_intrinsics] each scheduled
    proc is emitted [static] (its intrinsics body, as {!proc_to_c} renders
    it) behind a wrapper that calls it on the contiguous-C fast path
    ([ldc == mr], the only layout {!Exo_blis.Gemm.blis_ba} dispatches) and
    falls back to the portable nest otherwise; a proc the emitter rejects
    (not fully vectorized — fringe shapes) degrades to the portable nest
    alone. Under [Nat_portable] every kernel is the portable nest. *)
let native_unit ?(header_comment = "") ~(target : native_target)
    ~(kernels : (int * int * proc option) list) () : string =
  let b = Buffer.create 8192 in
  if header_comment <> "" then
    String.split_on_char '\n' header_comment
    |> List.iter (fun line -> Buffer.add_string b (Fmt.str "// %s\n" line));
  let procs =
    match target with
    | Nat_portable -> []
    | Nat_intrinsics -> List.filter_map (fun (_, _, p) -> p) kernels
  in
  let includes = List.sort_uniq compare (List.concat_map includes_of procs) in
  Buffer.add_string b
    "#include <stddef.h>\n#include <stdint.h>\n#include <stdbool.h>\n";
  List.iter (fun h -> Buffer.add_string b (Fmt.str "#include <%s>\n" h)) includes;
  Buffer.add_char b '\n';
  List.iter
    (fun (mr, nr, proc) ->
      let inner =
        match (target, proc) with
        | Nat_intrinsics, Some p -> (
            try Some (proc_to_c p, p.p_name) with Codegen_error _ -> None)
        | _ -> None
      in
      (match inner with
      | Some (code, _) ->
          Buffer.add_string b "static ";
          Buffer.add_string b code;
          Buffer.add_char b '\n'
      | None -> ());
      Buffer.add_string b (native_abi_signature (native_sym ~mr ~nr));
      Buffer.add_string b "\n{\n";
      (match inner with
      | Some (_, pname) ->
          Buffer.add_string b
            (Fmt.str
               "  if (ldc == %d) {\n\
               \    float one = 1.0f;\n\
               \    %s(kc, &one, A, B, &one, C);\n\
               \    return;\n\
               \  }\n"
               mr pname)
      | None -> ());
      portable_body b ~mr ~nr;
      Buffer.add_string b "}\n\n")
    kernels;
  Buffer.contents b

(** Render the matching header file. *)
let header ?(guard = "EXO_UKR_GENERATED_H") (procs : proc list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Fmt.str "#ifndef %s\n#define %s\n\n" guard guard);
  Buffer.add_string b "#include <stdint.h>\n#include <stdbool.h>\n\n";
  List.iter
    (fun p ->
      let ctx = { names = mk_names (); bufs = collect_buffers p } in
      Buffer.add_string b (signature ctx p);
      Buffer.add_string b ";\n")
    procs;
  Buffer.add_string b (Fmt.str "\n#endif // %s\n" guard);
  Buffer.contents b
