(** Translation validation for the lowered micro-kernel execution tiers.

    The flat-tape ({!Exo_interp.Compile.to_ukr}) and Bigarray
    ({!Exo_interp.Compile.to_ukr_ba}) tiers run [unsafe] accesses behind one
    hoisted range check, and until now were certified only *dynamically*
    (integer probes against the closure engine). This module is a static
    validator over the auditable {!Exo_interp.Compile.Summary} each lowering
    emits: the summary's affine addresses are evaluated in the
    affine-interval domain of the {!Effects} region algebra, with the
    k-loop counter ranging over [0, kc-1] and [kc] a symbolic size.

    Three properties, each [Proved] or [Unproved reason] (sound and
    incomplete — a verdict of [Proved] is a proof; [Unproved] keeps the
    dynamic probe):

    - {b bounds}: every access lies inside the contract the one hoisted
      range check establishes (A within [kc·mr], B within [kc·nr], C within
      [nr·mr], slab within its flattened length) for every admissible
      [kc ≥ 0] — panel accesses outside the k loop are rejected because the
      contract is empty at [kc = 0].
    - {b write-set containment}: stores touch only the entry's own C tile
      and private scratch. Combined with the disjoint (jc × ic) C blocks of
      {!Exo_blis.Gemm.blis_ba}'s task grid, this is a static race-freedom
      and width-invariance proof for the pool fan-out.
    - {b accumulation shape}: symbolic execution of the tape shows each C
      element [C[j,i]] ends as exactly
      [C₀[j,i] + Σ_{k<kc} A[i+k·mr]·B[j+k·nr]] (factors may commute) — the
      canonical reduction the Bigarray tier's f64-accumulate/round-once
      executors implement, so a [Proved] verdict justifies substituting
      them without the integer probe. *)

type verdict = Proved | Unproved of string

type report = {
  r_mr : int;
  r_nr : int;
  r_bounds : verdict;
  r_writes : verdict;
  r_accshape : verdict;
}

val ok : verdict -> bool

(** All three properties proved. *)
val proved : report -> bool

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

(** Validate one lowered tape. *)
val check : Exo_interp.Compile.Summary.t -> report

(** The concrete C-tile indices the tape stores to at a given [kc] —
    the statically computed write-set, enumerable because every store
    address is affine in [k] with constant coefficients. The qcheck oracle
    pins this against the touched-index set observed dynamically from the
    closure engine. Sorted, duplicate-free. *)
val c_write_indices : Exo_interp.Compile.Summary.t -> kc:int -> int list
