(** Loop dependence legality — the oracle behind [reorder_loops] and
    [autofission], implemented as queries against the {!Effects} region
    signatures. Answers [Ok ()] only when legality is *proved*; imprecision
    yields [Error]. Reductions are treated as reorderable amongst
    themselves, following Exo's scheduling contract. *)

val coeff : Exo_ir.Affine.t -> Exo_ir.Sym.t -> int
val drop_var : Exo_ir.Affine.t -> Exo_ir.Sym.t -> Exo_ir.Affine.t

(** Cross-iteration region disjointness of two accesses to the same buffer
    when [v] differs; [volatile] holds deeper binders that may also change. *)
val disjoint_when_var_differs :
  v:Exo_ir.Sym.t ->
  volatile:Exo_ir.Sym.Set.t ->
  Effects.access ->
  Effects.access ->
  bool

(** Is executing the block twice the same as once? (no reductions, no
    buffer both read and written — instruction calls included via their
    inferred effects). *)
val idempotent : Exo_ir.Ir.stmt list -> bool

(** The loop-invariant staging rule justifying operand-load fission through
    loops the load does not use (Fig. 9). *)
val invariant_pre_rule :
  v:Exo_ir.Sym.t -> pre:Exo_ir.Ir.stmt list -> post:Exo_ir.Ir.stmt list -> bool

(** Legality of [for v: pre; post ⇒ (for v: pre); (for v: post)]: no
    dependence from [post]@i to [pre]@j for j > i, via cross-iteration
    region disjointness, reduce-reduce commutation, or the invariant-pre
    rule. *)
val fission_legal :
  v:Exo_ir.Sym.t ->
  pre:Exo_ir.Ir.stmt list ->
  post:Exo_ir.Ir.stmt list ->
  (unit, string) result

(** Legality of swapping two perfectly nested loops. *)
val reorder_legal :
  outer:Exo_ir.Sym.t ->
  inner:Exo_ir.Sym.t ->
  body:Exo_ir.Ir.stmt list ->
  (unit, string) result
