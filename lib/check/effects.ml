(** Static effect inference — the reproduction of Exo's effect system.

    For any statement block (or whole proc) we compute its MAY read / write /
    reduce accesses as per-buffer affine regions, and provide a region
    algebra (disjointness, containment) under the symbolic constraints the
    rest of {!Exo_check} already uses: size parameters ≥ 1 and loop-variable
    ranges from [for] bounds and [assert] predicates. Everything is sound
    but incomplete: non-affine subscripts widen to unanalyzable dimensions
    and unprovable queries answer [false]/[Error], never the reverse. *)

open Exo_ir
open Ir

(* ------------------------------------------------------------------ *)
(* Accesses *)

type mode = MRead | MWrite | MReduce

type dim = DPt of Affine.t | DIv of Affine.t * Affine.t | DUnk
type region = dim list
type access = { buf : Sym.t; mode : mode; region : region }

let is_write a = a.mode <> MRead
let dim_of_expr e = match Affine.of_expr e with Some a -> DPt a | None -> DUnk

let window_region (widx : waccess list) : region =
  List.map
    (function
      | Pt e -> dim_of_expr e
      | Iv (lo, hi) -> (
          match (Affine.of_expr lo, Affine.of_expr hi) with
          | Some l, Some h -> DIv (l, Affine.sub h (Affine.const 1))
          | _ -> DUnk))
    widx

let rec collect_expr acc (e : expr) =
  match e with
  | Read (b, idx) ->
      let acc = List.fold_left collect_expr acc idx in
      { buf = b; mode = MRead; region = List.map dim_of_expr idx } :: acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      collect_expr (collect_expr acc a) b
  | Neg a | Not a -> collect_expr acc a
  | Int _ | Float _ | Var _ | Stride _ -> acc

(* [collect] and [param_modes] are mutually recursive through SCall: the
   effect of a call is the callee's per-parameter effect mapped through the
   actual windows. Procs are acyclic values, so this terminates. *)
let rec collect_stmts acc (body : stmt list) : access list =
  List.fold_left
    (fun acc s ->
      match s with
      | SAssign (b, idx, e) ->
          let acc = collect_expr (List.fold_left collect_expr acc idx) e in
          { buf = b; mode = MWrite; region = List.map dim_of_expr idx } :: acc
      | SReduce (b, idx, e) ->
          let acc = collect_expr (List.fold_left collect_expr acc idx) e in
          { buf = b; mode = MReduce; region = List.map dim_of_expr idx } :: acc
      | SFor (_, lo, hi, inner) ->
          collect_stmts (collect_expr (collect_expr acc lo) hi) inner
      | SAlloc (_, _, dims, _) -> List.fold_left collect_expr acc dims
      | SCall (callee, args) -> call_effects acc callee args
      | SIf (c, t, e) -> collect_stmts (collect_stmts (collect_expr acc c) t) e)
    acc body

and call_effects acc (callee : proc) (args : call_arg list) : access list =
  let pmodes = if callee.p_body = [] then None else Some (param_modes callee) in
  let rec go acc params args =
    match (params, args) with
    | [], _ | _, [] -> acc
    | (a : arg) :: ps, ca :: cas ->
        let acc =
          match ca with
          | AExpr e -> collect_expr acc e
          | AWin w ->
              (* subscript expressions of the window are reads themselves *)
              let acc =
                List.fold_left
                  (fun acc wa ->
                    match wa with
                    | Pt e -> collect_expr acc e
                    | Iv (lo, hi) -> collect_expr (collect_expr acc lo) hi)
                  acc w.widx
              in
              let region = window_region w.widx in
              let modes =
                match pmodes with
                | None -> [ MRead; MWrite ] (* bodyless callee: conservative *)
                | Some pm -> (
                    match
                      List.find_opt (fun (s, _) -> Sym.equal s a.a_name) pm
                    with
                    | Some (_, ms) -> ms
                    | None -> [ MRead; MWrite ])
              in
              List.fold_left
                (fun acc m -> { buf = w.wbuf; mode = m; region } :: acc)
                acc modes
        in
        go acc ps cas
  in
  go acc callee.p_args args

and param_modes (callee : proc) : (Sym.t * mode list) list =
  let accs = collect_stmts [] callee.p_body in
  List.filter_map
    (fun (a : arg) ->
      match a.a_typ with
      | TTensor _ | TScalar _ ->
          let ms =
            List.filter_map
              (fun ac -> if Sym.equal ac.buf a.a_name then Some ac.mode else None)
              accs
            |> List.sort_uniq compare
          in
          Some (a.a_name, ms)
      | _ -> None)
    callee.p_args

let collect (body : stmt list) : access list = List.rev (collect_stmts [] body)

(* ------------------------------------------------------------------ *)
(* Contexts *)

type ctx = { sizes : Sym.Set.t; ranges : Bounds.interval Sym.Map.t }

let ctx_empty = { sizes = Sym.Set.empty; ranges = Sym.Map.empty }

let benv (c : ctx) : Bounds.env =
  { Bounds.sizes = c.sizes; ranges = c.ranges; dims = Sym.Map.empty }

let ctx_of_proc (p : proc) : ctx =
  let sizes =
    List.fold_left
      (fun acc (a : arg) ->
        match a.a_typ with TSize -> Sym.Set.add a.a_name acc | _ -> acc)
      Sym.Set.empty p.p_args
  in
  { sizes; ranges = Bounds.pred_ranges p.p_preds }

let ctx_push_loop (ctx : ctx) (v : Sym.t) (lo : expr) (hi : expr) : ctx =
  let range =
    match (Affine.of_expr lo, Affine.of_expr hi) with
    | Some la, Some ha ->
        let rlo = Bounds.range_of_affine (benv ctx) la
        and rhi = Bounds.range_of_affine (benv ctx) ha in
        {
          Bounds.lo = rlo.Bounds.lo;
          hi = Option.map (fun h -> Affine.sub h (Affine.const 1)) rhi.Bounds.hi;
        }
    | _ -> { Bounds.lo = None; hi = None }
  in
  { ctx with ranges = Sym.Map.add v range ctx.ranges }

let collect_sited (ctx : ctx) (body : stmt list) : (ctx * access) list =
  let out = ref [] in
  let emit ctx accs = List.iter (fun a -> out := (ctx, a) :: !out) accs in
  let rec go ctx body =
    List.iter
      (fun s ->
        match s with
        | SFor (v, lo, hi, inner) ->
            emit ctx (collect_expr (collect_expr [] lo) hi);
            go (ctx_push_loop ctx v lo hi) inner
        | SIf (c, t, e) ->
            emit ctx (collect_expr [] c);
            go ctx t;
            go ctx e
        | s -> emit ctx (collect_stmts [] [ s ]))
      body
  in
  go ctx body;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Region algebra *)

(* Subtract first, then widen: shared variables cancel before the interval
   abstraction loses them, so e.g. [i] vs [i+1] proves strict order. *)
let aff_le (ctx : ctx) (a : Affine.t) (b : Affine.t) : bool =
  let r = Bounds.range_of_affine (benv ctx) (Affine.sub b a) in
  match r.Bounds.lo with
  | Some l -> Bounds.nonneg (benv ctx) l = `Yes
  | None -> false

let aff_lt ctx a b = aff_le ctx (Affine.add a (Affine.const 1)) b

let dim_endpoints = function
  | DPt a -> Some (a, a)
  | DIv (l, h) -> Some (l, h)
  | DUnk -> None

let dim_disjoint ctx d1 d2 =
  match (dim_endpoints d1, dim_endpoints d2) with
  | Some (l1, h1), Some (l2, h2) -> aff_lt ctx h1 l2 || aff_lt ctx h2 l1
  | _ -> false

let region_disjoint ctx (r1 : region) (r2 : region) : bool =
  List.length r1 = List.length r2 && List.exists2 (dim_disjoint ctx) r1 r2

let dim_contains ctx ~outer ~inner =
  match (dim_endpoints outer, dim_endpoints inner) with
  | Some (ol, oh), Some (il, ih) -> aff_le ctx ol il && aff_le ctx ih oh
  | _ -> false

let region_contains ctx ~(outer : region) ~(inner : region) : bool =
  List.length outer = List.length inner
  && List.for_all2 (fun o i -> dim_contains ctx ~outer:o ~inner:i) outer inner

let dim_equal d1 d2 =
  match (d1, d2) with
  | DPt a, DPt b -> Affine.equal a b
  | DIv (l1, h1), DIv (l2, h2) -> Affine.equal l1 l2 && Affine.equal h1 h2
  | _ -> false

let region_equal r1 r2 =
  List.length r1 = List.length r2 && List.for_all2 dim_equal r1 r2

let aff_vars (a : Affine.t) =
  List.fold_left (fun s (v, _) -> Sym.Set.add v s) Sym.Set.empty a.Affine.terms

let dim_vars = function
  | DPt a -> aff_vars a
  | DIv (l, h) -> Sym.Set.union (aff_vars l) (aff_vars h)
  | DUnk -> Sym.Set.empty

let region_vars (r : region) =
  List.fold_left (fun s d -> Sym.Set.union s (dim_vars d)) Sym.Set.empty r

let in_range ctx (a : Affine.t) ~(lo : Affine.t) ~(hi_excl : Affine.t) : bool =
  dim_contains ctx
    ~outer:(DIv (lo, Affine.sub hi_excl (Affine.const 1)))
    ~inner:(DPt a)

(* Mixed-radix coverage: do the subscripts, with their variables sweeping
   [0, ext) ranges, enumerate a box of the given extents bijectively? The
   sufficient criterion: per dimension, zero constant, terms sorted by
   coefficient magnitude satisfy c0 = 1, c(i+1) = ci * exti, the product of
   extents equals the box extent, and dimensions use pairwise disjoint
   variables. *)
let covers ~(ranges_of : Sym.t -> (int * int) option) (idx : Affine.t list)
    (extents : int list) : bool =
  let used = ref Sym.Set.empty in
  List.length idx = List.length extents
  && List.for_all2
       (fun (a : Affine.t) (n : int) ->
         if a.Affine.const <> 0 then false
         else
           let terms =
             List.sort
               (fun (_, c1) (_, c2) -> compare (abs c1) (abs c2))
               a.Affine.terms
           in
           List.for_all (fun (v, _) -> not (Sym.Set.mem v !used)) terms
           &&
           (List.iter (fun (v, _) -> used := Sym.Set.add v !used) terms;
            let rec radix expected = function
              | [] -> expected = n
              | (v, c) :: rest -> (
                  match ranges_of v with
                  | Some (0, ext) when c = expected -> radix (expected * ext) rest
                  | _ -> false)
            in
            radix 1 terms))
       idx extents

(* ------------------------------------------------------------------ *)
(* Whole-proc signatures *)

type boxdim = { blo : Affine.t option; bhi : Affine.t option }
type box = boxdim list
type footprint = { reads : box option; writes : box option }

let box_of (ctx : ctx) (r : region) : box =
  List.map
    (fun d ->
      match d with
      | DUnk -> { blo = None; bhi = None }
      | DPt a ->
          let rr = Bounds.range_of_affine (benv ctx) a in
          { blo = rr.Bounds.lo; bhi = rr.Bounds.hi }
      | DIv (l, h) ->
          {
            blo = (Bounds.range_of_affine (benv ctx) l).Bounds.lo;
            bhi = (Bounds.range_of_affine (benv ctx) h).Bounds.hi;
          })
    r

let box_join (ctx : ctx) (b1 : box) (b2 : box) : box =
  if List.length b1 <> List.length b2 then
    List.map (fun _ -> { blo = None; bhi = None }) b1
  else
    List.map2
      (fun d1 d2 ->
        {
          blo =
            (match (d1.blo, d2.blo) with
            | Some a, Some b ->
                if aff_le ctx a b then Some a
                else if aff_le ctx b a then Some b
                else None
            | _ -> None);
          bhi =
            (match (d1.bhi, d2.bhi) with
            | Some a, Some b ->
                if aff_le ctx b a then Some a
                else if aff_le ctx a b then Some b
                else None
            | _ -> None);
        })
      b1 b2

let proc_signature (p : proc) : (Sym.t * footprint) list =
  let ctx = ctx_of_proc p in
  let sited = collect_sited ctx p.p_body in
  let arg_bufs =
    List.filter_map
      (fun (a : arg) ->
        match a.a_typ with
        | TTensor _ | TScalar _ -> Some a.a_name
        | _ -> None)
      p.p_args
  in
  List.map
    (fun b ->
      let fold pred =
        List.fold_left
          (fun acc (c, ac) ->
            if Sym.equal ac.buf b && pred ac.mode then
              let bx = box_of c ac.region in
              Some (match acc with None -> bx | Some old -> box_join ctx old bx)
            else acc)
          None sited
      in
      ( b,
        {
          reads = fold (fun m -> m = MRead || m = MReduce);
          writes = fold (fun m -> m = MWrite || m = MReduce);
        } ))
    arg_bufs

(* ------------------------------------------------------------------ *)
(* Effect preservation *)

let box_escapes ctx ~(old_b : box) ~(new_b : box) : bool =
  (* Some dimension where the new footprint provably extends beyond the
     old hull. Incomparable bounds do not count (MAY-analysis). *)
  List.length old_b = List.length new_b
  && List.exists2
       (fun o n ->
         (match (o.blo, n.blo) with
         | Some ol, Some nl -> aff_lt ctx nl ol
         | _ -> false)
         ||
         match (o.bhi, n.bhi) with
         | Some oh, Some nh -> aff_lt ctx oh nh
         | _ -> false)
       old_b new_b

let preserves ~(old_p : proc) ~(new_p : proc) : (unit, string) result =
  let ctx =
    let so = ctx_of_proc old_p and sn = ctx_of_proc new_p in
    {
      sizes = Sym.Set.union so.sizes sn.sizes;
      ranges = Sym.Map.fold Sym.Map.add so.ranges sn.ranges;
    }
  in
  let sig_old = proc_signature old_p and sig_new = proc_signature new_p in
  let find b l =
    Option.map snd (List.find_opt (fun (b', _) -> Sym.equal b b') l)
  in
  let check (b, fp_new) =
    match find b sig_old with
    | None ->
        if fp_new.reads = None && fp_new.writes = None then Ok ()
        else
          Error
            (Fmt.str "buffer %a is not accessed by the original proc" Sym.pp b)
    | Some fp_old ->
        if fp_new.writes <> None && fp_old.writes = None then
          Error (Fmt.str "rewrite introduces writes to %a" Sym.pp b)
        else if
          fp_new.reads <> None && fp_old.reads = None && fp_old.writes = None
        then Error (Fmt.str "rewrite introduces reads of %a" Sym.pp b)
        else
          let escape what old_box new_box =
            match (old_box, new_box) with
            | Some ob, Some nb when box_escapes ctx ~old_b:ob ~new_b:nb ->
                Error
                  (Fmt.str "%s region of %a escapes the original footprint"
                     what Sym.pp b)
            | _ -> Ok ()
          in
          let r = escape "write" fp_old.writes fp_new.writes in
          if r <> Ok () then r
          else
            (* Staged copies may read cells the original only wrote, so the
               read hull is bounded by the original read-or-write hull. *)
            let old_rw =
              match (fp_old.reads, fp_old.writes) with
              | Some r, Some w -> Some (box_join ctx r w)
              | Some r, None -> Some r
              | None, w -> w
            in
            escape "read" old_rw fp_new.reads
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> check e)
    (Ok ()) sig_new

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let pp_bound ppf = function
  | None -> Fmt.pf ppf "?"
  | Some a -> Affine.pp ppf a

let pp_box ppf (b : box) =
  Fmt.pf ppf "[%a]"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf d ->
         Fmt.pf ppf "%a..%a" pp_bound d.blo pp_bound d.bhi))
    b

let pp_footprint ppf (fp : footprint) =
  let part name = function
    | None -> ()
    | Some b -> Fmt.pf ppf " %s%a" name pp_box b
  in
  part "R" fp.reads;
  part "W" fp.writes;
  if fp.reads = None && fp.writes = None then Fmt.pf ppf " (unused)"

let pp_signature ppf (sg : (Sym.t * footprint) list) =
  Fmt.pf ppf "@[<h>%a@]"
    (Fmt.list ~sep:(Fmt.any "; ")
       (fun ppf (b, fp) -> Fmt.pf ppf "%a:%a" Sym.pp b pp_footprint fp))
    sg

(* ------------------------------------------------------------------ *)
(* Shape helpers *)

let shape_vars (es : expr list) : Sym.Set.t =
  List.fold_left
    (fun acc e ->
      match Affine.of_expr e with
      | Some a -> Sym.Set.union acc (aff_vars a)
      | None -> expr_vars acc e)
    Sym.Set.empty es
