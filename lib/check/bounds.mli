(** Symbolic bounds checking: every buffer access within its extents, loop
    variables abstracted to affine ranges, size parameters symbolic (≥ 1).
    Sound and incomplete: each access is proved, provably violated, or
    unknown; the generated kernels are entirely affine, so tests demand
    [Proved] across the board. *)

type verdict = Proved | Unknown | Violated

(** Inclusive affine endpoints over size parameters; [None] = unbounded. *)
type interval = { lo : Exo_ir.Affine.t option; hi : Exo_ir.Affine.t option }

type env = {
  sizes : Exo_ir.Sym.Set.t;  (** symbols standing for values ≥ 1 *)
  ranges : interval Exo_ir.Sym.Map.t;  (** loop vars, pred-bounded indices *)
  dims : (Exo_ir.Dtype.t * Exo_ir.Ir.expr list) Exo_ir.Sym.Map.t;
}

(** Range of an affine form: loop variables replaced by their endpoints,
    sizes kept symbolic. *)
val range_of_affine : env -> Exo_ir.Affine.t -> interval

(** Provable non-negativity under sizes ≥ 1. *)
val nonneg : env -> Exo_ir.Affine.t -> [ `Yes | `No | `Maybe ]

(** Non-negativity knowing only that the given symbols are ≥ 1 (trip-count
    proofs in [remove_loop]). *)
val nonneg_with_sizes :
  Exo_ir.Sym.Set.t -> Exo_ir.Affine.t -> [ `Yes | `No | `Maybe ]

type failure = { access : string; reason : string; verdict : verdict }
type report = { violations : failure list; unknowns : failure list }

(** Index-argument ranges mined from [assert] predicates of the shapes
    [v >= e] / [v < e] / [v <= e] / [v > e]. *)
val pred_ranges : Exo_ir.Ir.expr list -> interval Exo_ir.Sym.Map.t

(** Bounds-check a procedure; index-argument ranges are mined from its
    [assert] predicates (the fmla lane contract). Not re-entrant. *)
val check_proc : Exo_ir.Ir.proc -> report

val pp_failure : Format.formatter -> failure -> unit
