(** Static kernel lint: prove the Fig. 12 properties of a scheduled
    micro-kernel without running the simulator.

    Five rules, each independently falsifiable:

    - ["bounds"] — {!Bounds.check_proc} must report every access [Proved]
      (no unknowns, no violations);
    - ["vregs"] — vector-register residency (the sum over register-memory
      allocations of their vector counts) must fit the target's register
      file (≤ 32 on NEON);
    - ["scalar-ops"] — a vectorized kernel must carry no scalar data
      operations (plain assign/reduce) inside a symbolic — i.e. runtime-
      trip-count — loop such as the k-loop;
    - ["census"] — the steady-state instruction census (calls inside
      symbolic loops, constant loops multiplied out) must match the
      expected per-iteration load/fma/broadcast counts (Fig. 12: 5 vector
      loads + 24 fmla for the 8×12 f32 kernel);
    - ["effects"] — the {!Effects.proc_signature} certificate: the kernel
      may write only the declared output buffers, everything else is
      read-only.

    The module is ISA-agnostic: what counts as a vector memory and how many
    registers exist come in through {!target} (the [ukrgen] layer
    instantiates it from a kit). *)

type census = {
  loads : int;
  stores : int;
  fmas : int;
  bcasts : int;
  ariths : int;
  scalars : int;  (** plain assign/reduce statements *)
}

val census_zero : census
val pp_census : Format.formatter -> census -> unit

(** Steady-state census of a proc: statements inside symbolic
    (runtime-trip-count) loops, with enclosing and interior constant loops
    multiplied out. *)
val steady_census : Exo_ir.Ir.proc -> census

type target = {
  is_vector_mem : Exo_ir.Mem.t -> bool;
  max_vregs : int;
}

type expect = {
  vectorized : bool;  (** demand no scalar data ops in symbolic loops *)
  census : census option;  (** expected steady-state census, if pinned *)
  writable : string list;  (** argument buffers the kernel may write *)
}

type finding = { rule : string; detail : string }

type report = {
  proc_name : string;
  vregs : int;  (** vector registers live (0 for scalar kernels) *)
  signature : string;  (** rendered effect signature *)
  findings : finding list;
}

val ok : report -> bool
val check : target -> expect -> Exo_ir.Ir.proc -> report
val pp_report : Format.formatter -> report -> unit
