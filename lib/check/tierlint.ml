(** Translation validation for the lowered micro-kernel execution tiers.
    See the interface for the property catalogue. *)

open Exo_ir
module S = Exo_interp.Compile.Summary

type verdict = Proved | Unproved of string

type report = {
  r_mr : int;
  r_nr : int;
  r_bounds : verdict;
  r_writes : verdict;
  r_accshape : verdict;
}

let ok = function Proved -> true | Unproved _ -> false
let proved (r : report) = ok r.r_bounds && ok r.r_writes && ok r.r_accshape

let pp_verdict ppf = function
  | Proved -> Fmt.pf ppf "proved"
  | Unproved m -> Fmt.pf ppf "UNPROVED (%s)" m

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%dx%d: bounds %a; writes %a; accshape %a@]" r.r_mr r.r_nr
    pp_verdict r.r_bounds pp_verdict r.r_writes pp_verdict r.r_accshape

(* ------------------------------------------------------------------ *)
(* Shared traversal helpers *)

let rec rhs_operands acc = function
  | S.Const _ -> acc
  | S.Read o -> o :: acc
  | S.Bin (_, a, b) -> rhs_operands (rhs_operands acc a) b
  | S.Neg a -> rhs_operands acc a

(* Fold [f] over every operand of the tape (destinations and reads alike),
   tagged with whether it sits in the k loop and whether it is a store. *)
let iter_operands (s : S.t) f =
  List.iter
    (fun (sg : S.seg) ->
      List.iter
        (fun (op : S.op) ->
          f ~in_loop:sg.S.in_loop ~is_store:true op.S.dst;
          List.iter
            (f ~in_loop:sg.S.in_loop ~is_store:false)
            (rhs_operands [] op.S.rhs))
        sg.S.ops)
    s.S.segs

(* ------------------------------------------------------------------ *)
(* (a) bounds: every access inside the hoisted contract *)

(* The single up-front range check of the compiled tiers guarantees, for
   kc ≥ 0 and non-negative panel offsets: |A| ≥ kc·mr, |B| ≥ kc·nr,
   |C| ≥ nr·mr past the respective bases. The slab's extent is the
   lowering's own [slab] length. Each access must be proved inside its
   space's region for EVERY kc the guard admits — loop operands may assume
   k ∈ [0, kc-1] (so kc ≥ 1 whenever they execute); straight-line operands
   execute even at kc = 0, where the contract guarantees no A/B elements
   at all, so panel accesses outside the loop are rejected outright. *)
let check_bounds (s : S.t) : verdict =
  let kc = Sym.fresh "kc" and k = Sym.fresh "k" in
  let kcv = Affine.var kc and kv = Affine.var k in
  let ctx_loop =
    {
      Effects.sizes = Sym.Set.singleton kc;
      ranges =
        Sym.Map.singleton k
          { Bounds.lo = Some Affine.zero;
            hi = Some (Affine.sub kcv (Affine.const 1)) };
    }
  in
  let hi_excl = function
    | S.A -> Affine.scale s.S.mr kcv
    | S.B -> Affine.scale s.S.nr kcv
    | S.C -> Affine.const (s.S.mr * s.S.nr)
    | S.Slab -> Affine.const s.S.slab
  in
  let bad = ref None in
  let fail m = if !bad = None then bad := Some m in
  iter_operands s (fun ~in_loop ~is_store:_ (o : S.operand) ->
      let name = S.space_name o.S.sp in
      match o.S.sp with
      | (S.A | S.B) when not in_loop ->
          (* at kc = 0 the contract covers zero panel elements *)
          fail
            (Fmt.str "%s[%d] accessed outside the k loop (contract empty at kc=0)"
               name o.S.base)
      | _ when (not in_loop) && o.S.kstep <> 0 ->
          fail (Fmt.str "%s operand has a k step outside the k loop" name)
      | sp ->
          let ctx = if in_loop then ctx_loop else Effects.ctx_empty in
          let addr =
            Affine.add (Affine.const o.S.base) (Affine.scale o.S.kstep kv)
          in
          if not (Effects.in_range ctx addr ~lo:Affine.zero ~hi_excl:(hi_excl sp))
          then
            fail
              (Fmt.str "%s[%d%+d·k] not provably inside its contract" name
                 o.S.base o.S.kstep));
  match !bad with None -> Proved | Some m -> Unproved m

(* ------------------------------------------------------------------ *)
(* (b) write-set containment *)

(* Every store must target the entry's own nr·mr C tile or its private
   scratch slab — never the shared packed panels. Combined with the
   (jc × ic) task-grid geometry of [Gemm.blis_ba] (each task owns a
   disjoint C row×column block and its own arenas/slabs), this is a static
   race-freedom and width-invariance proof for the pool fan-out: no two
   tasks can write one location, at any pool width. *)
let check_writes (s : S.t) : verdict =
  let kc = Sym.fresh "kc" and k = Sym.fresh "k" in
  let kcv = Affine.var kc and kv = Affine.var k in
  let ctx_loop =
    {
      Effects.sizes = Sym.Set.singleton kc;
      ranges =
        Sym.Map.singleton k
          { Bounds.lo = Some Affine.zero;
            hi = Some (Affine.sub kcv (Affine.const 1)) };
    }
  in
  let bad = ref None in
  let fail m = if !bad = None then bad := Some m in
  iter_operands s (fun ~in_loop ~is_store (o : S.operand) ->
      if is_store then
        match o.S.sp with
        | S.A | S.B ->
            fail
              (Fmt.str "store into the shared %s panel" (S.space_name o.S.sp))
        | (S.C | S.Slab) as sp ->
            let hi =
              match sp with
              | S.C -> (s.S.mr * s.S.nr) - 1
              | _ -> s.S.slab - 1
            in
            let ctx = if in_loop then ctx_loop else Effects.ctx_empty in
            let addr =
              Affine.add (Affine.const o.S.base) (Affine.scale o.S.kstep kv)
            in
            let tile = [ Effects.DIv (Affine.zero, Affine.const hi) ] in
            if
              not
                (Effects.region_contains ctx ~outer:tile
                   ~inner:[ Effects.DPt addr ])
            then
              fail
                (Fmt.str "store %s[%d%+d·k] escapes the entry's tile"
                   (S.space_name sp) o.S.base o.S.kstep));
  match !bad with None -> Proved | Some m -> Unproved m

(* ------------------------------------------------------------------ *)
(* (c) accumulation shape *)

(* One packed-panel element at symbolic k: [sp[base + kstep·k]]. *)
type atom = { a_sp : [ `A | `B ]; a_base : int; a_kstep : int }

(* The abstract value of one C/slab cell: its initial contribution plus a
   list of products, each summed over the whole k loop. Anything the
   domain cannot represent exactly poisons the cell (sound: Unproved). *)
type cell =
  | CBad of string
  | CVal of init * (atom * atom) list

and init = IOrigC of int | IConstF of float

let cell_add a b =
  match (a, b) with
  | CBad m, _ | _, CBad m -> CBad m
  | CVal (i, t1), CVal (IConstF 0.0, t2) -> CVal (i, t1 @ t2)
  | CVal (IConstF 0.0, t1), CVal (i, t2) -> CVal (i, t1 @ t2)
  | CVal _, CVal _ -> CBad "non-canonical addition of two initialized values"

(* Symbolic execution of the tape over per-cell states. Straight-line
   segments execute once with constant addresses; the k-loop body is
   interpreted per-iteration: staging copies (panel element -> slab cell)
   become iteration-local atoms, and [dst += atom · atom] appends one
   loop-summed product to the carried cell. Any other loop-body shape
   poisons the destination. *)
let check_accshape (s : S.t) : verdict =
  if s.S.kc_pos then
    Unproved "tape demands kc ≥ 1 (post-loop read of a loop-written cell)"
  else begin
    let mr = s.S.mr and nr = s.S.nr in
    let cstate = Array.init (mr * nr) (fun i -> CVal (IOrigC i, [])) in
    let sstate = Array.make (max 1 s.S.slab) (CBad "uninitialized scratch") in
    let in_c i = i >= 0 && i < mr * nr in
    let in_s i = i >= 0 && i < s.S.slab in
    let exec_flat (op : S.op) =
      let rec eval = function
        | S.Const f -> CVal (IConstF f, [])
        | S.Read o -> (
            match o.S.sp with
            | S.C when in_c o.S.base -> cstate.(o.S.base)
            | S.Slab when in_s o.S.base -> sstate.(o.S.base)
            | _ -> CBad "unsupported straight-line read")
        | S.Bin (Ir.Add, a, b) -> cell_add (eval a) (eval b)
        | S.Bin _ | S.Neg _ -> CBad "unsupported straight-line arithmetic"
      in
      let v = eval op.S.rhs in
      let store st idx =
        st.(idx) <- (if op.S.reduce then cell_add st.(idx) v else v)
      in
      match op.S.dst.S.sp with
      | S.C when in_c op.S.dst.S.base -> store cstate op.S.dst.S.base
      | S.Slab when in_s op.S.dst.S.base -> store sstate op.S.dst.S.base
      | _ -> ()
      (* out-of-space stores are the write-set pass's finding *)
    in
    let exec_loop (ops : S.op list) =
      (* slab cells assigned this iteration, holding one panel element *)
      let iter : (int, atom option) Hashtbl.t = Hashtbl.create 16 in
      let atom_of = function
        | S.Read (o : S.operand) -> (
            match o.S.sp with
            | S.A -> Some { a_sp = `A; a_base = o.S.base; a_kstep = o.S.kstep }
            | S.B -> Some { a_sp = `B; a_base = o.S.base; a_kstep = o.S.kstep }
            | S.Slab when o.S.kstep = 0 -> (
                match Hashtbl.find_opt iter o.S.base with
                | Some a -> a
                | None -> None)
            | _ -> None)
        | _ -> None
      in
      let poison st idx m =
        if idx >= 0 && idx < Array.length st then st.(idx) <- CBad m
      in
      let add_term st idx a b =
        if idx >= 0 && idx < Array.length st then
          st.(idx) <-
            (match st.(idx) with
            | CVal (i, ts) -> CVal (i, ts @ [ (a, b) ])
            | CBad _ as bad -> bad)
      in
      List.iter
        (fun (op : S.op) ->
          let d = op.S.dst in
          match d.S.sp with
          | S.A | S.B -> () (* write-set pass rejects *)
          | (S.C | S.Slab) as sp -> (
              let st = if sp = S.C then cstate else sstate in
              if d.S.kstep <> 0 then
                poison st d.S.base "k-dependent store address in the loop body"
              else if not op.S.reduce then
                if sp = S.Slab then begin
                  (* staging copy: iteration-local; the carried value is
                     rewritten every iteration, so it is dead after the
                     loop unless kc_pos flagged a read (excluded above) *)
                  Hashtbl.replace iter d.S.base (atom_of op.S.rhs);
                  poison st d.S.base "slab cell overwritten every iteration"
                end
                else poison st d.S.base "C overwritten inside the k loop"
              else if sp = S.Slab && Hashtbl.mem iter d.S.base then
                poison st d.S.base "accumulate onto an iteration-local cell"
              else
                match op.S.rhs with
                | S.Bin (Ir.Mul, x, y) -> (
                    match (atom_of x, atom_of y) with
                    | Some a, Some b -> add_term st d.S.base a b
                    | _ ->
                        poison st d.S.base
                          "accumulate of a non-panel-product in the k loop")
                | _ ->
                    poison st d.S.base "non-product accumulate in the k loop"))
        ops
    in
    List.iter
      (fun (sg : S.seg) ->
        if sg.S.in_loop then exec_loop sg.S.ops
        else List.iter exec_flat sg.S.ops)
      s.S.segs;
    (* every C cell must now hold exactly C₀ + Σ_k A[i+k·mr]·B[j+k·nr] *)
    let bad = ref None in
    let fail m = if !bad = None then bad := Some m in
    for idx = 0 to (mr * nr) - 1 do
      let i = idx mod mr and j = idx / mr in
      let is_a a = a.a_sp = `A && a.a_base = i && a.a_kstep = mr in
      let is_b a = a.a_sp = `B && a.a_base = j && a.a_kstep = nr in
      match cstate.(idx) with
      | CVal (IOrigC b, [ (x, y) ])
        when b = idx && ((is_a x && is_b y) || (is_a y && is_b x)) ->
          ()
      | CVal (IOrigC b, []) when b = idx ->
          fail (Fmt.str "C[%d,%d] never receives the A·B reduction" j i)
      | CVal _ ->
          fail (Fmt.str "C[%d,%d] receives a non-canonical reduction" j i)
      | CBad m -> fail (Fmt.str "C[%d,%d]: %s" j i m)
    done;
    match !bad with None -> Proved | Some m -> Unproved m
  end

(* ------------------------------------------------------------------ *)

let check (s : S.t) : report =
  {
    r_mr = s.S.mr;
    r_nr = s.S.nr;
    r_bounds = check_bounds s;
    r_writes = check_writes s;
    r_accshape = check_accshape s;
  }

let c_write_indices (s : S.t) ~(kc : int) : int list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (sg : S.seg) ->
      List.iter
        (fun (op : S.op) ->
          if op.S.dst.S.sp = S.C then
            if sg.S.in_loop then
              for k = 0 to kc - 1 do
                Hashtbl.replace tbl (op.S.dst.S.base + (k * op.S.dst.S.kstep)) ()
              done
            else Hashtbl.replace tbl op.S.dst.S.base ())
        sg.S.ops)
    s.S.segs;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
