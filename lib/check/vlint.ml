(** Static kernel lint — the Fig. 12 properties proved without running the
    simulator. See the interface for the rule catalogue. *)

open Exo_ir
open Ir

type census = {
  loads : int;
  stores : int;
  fmas : int;
  bcasts : int;
  ariths : int;
  scalars : int;
}

let census_zero = { loads = 0; stores = 0; fmas = 0; bcasts = 0; ariths = 0; scalars = 0 }

let census_add a b =
  {
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    fmas = a.fmas + b.fmas;
    bcasts = a.bcasts + b.bcasts;
    ariths = a.ariths + b.ariths;
    scalars = a.scalars + b.scalars;
  }

let census_scale n a =
  {
    loads = n * a.loads;
    stores = n * a.stores;
    fmas = n * a.fmas;
    bcasts = n * a.bcasts;
    ariths = n * a.ariths;
    scalars = n * a.scalars;
  }

let census_max a b =
  {
    loads = max a.loads b.loads;
    stores = max a.stores b.stores;
    fmas = max a.fmas b.fmas;
    bcasts = max a.bcasts b.bcasts;
    ariths = max a.ariths b.ariths;
    scalars = max a.scalars b.scalars;
  }

let pp_census ppf c =
  Fmt.pf ppf "%d ld / %d st / %d fma / %d bcast / %d arith / %d scalar" c.loads
    c.stores c.fmas c.bcasts c.ariths c.scalars

(** Constant trip count of [for (lo, hi)], if provable affinely. *)
let const_extent (lo : expr) (hi : expr) : int option =
  match (Affine.of_expr lo, Affine.of_expr hi) with
  | Some l, Some h -> Affine.is_const (Affine.sub h l)
  | _ -> None

let rec census_stmts (body : stmt list) : census =
  List.fold_left (fun acc s -> census_add acc (census_stmt s)) census_zero body

and census_stmt (s : stmt) : census =
  match s with
  | SCall (callee, _) -> (
      match callee.p_instr with
      | Some i -> (
          match i.ci_kind with
          | KLoad -> { census_zero with loads = 1 }
          | KStore -> { census_zero with stores = 1 }
          | KFma -> { census_zero with fmas = 1 }
          | KBcast -> { census_zero with bcasts = 1 }
          | KArith | KOther -> { census_zero with ariths = 1 })
      | None -> census_stmts callee.p_body)
  | SAssign _ | SReduce _ -> { census_zero with scalars = 1 }
  | SAlloc _ -> census_zero
  | SFor (_, lo, hi, inner) -> (
      let c = census_stmts inner in
      match const_extent lo hi with Some n -> census_scale n c | None -> c)
  | SIf (_, t, e) -> census_max (census_stmts t) (census_stmts e)

let steady_census (p : proc) : census =
  let acc = ref census_zero in
  let rec walk mult body =
    List.iter
      (fun s ->
        match s with
        | SFor (_, lo, hi, inner) -> (
            match const_extent lo hi with
            | Some n -> walk (mult * n) inner
            | None -> acc := census_add !acc (census_scale mult (census_stmts inner)))
        | SIf (_, t, e) ->
            walk mult t;
            walk mult e
        | _ -> ())
      body
  in
  walk 1 p.p_body;
  !acc

(* ------------------------------------------------------------------ *)

type target = { is_vector_mem : Mem.t -> bool; max_vregs : int }

type expect = {
  vectorized : bool;
  census : census option;
  writable : string list;
}

type finding = { rule : string; detail : string }

type report = {
  proc_name : string;
  vregs : int;
  signature : string;
  findings : finding list;
}

let ok r = r.findings = []

let check (t : target) (e : expect) (p : proc) : report =
  let findings = ref [] in
  let fail rule fmt =
    Fmt.kstr (fun detail -> findings := { rule; detail } :: !findings) fmt
  in
  (* bounds: every access Proved *)
  let br = Bounds.check_proc p in
  List.iter
    (fun f -> fail "bounds" "%a" Bounds.pp_failure f)
    (br.Bounds.violations @ br.Bounds.unknowns);
  (* vregs: residency of register-memory allocations. A rank-n alloc in a
     vector memory holds (product of all but the innermost extent) vectors. *)
  let vregs = ref 0 in
  iter_stmts
    (function
      | SAlloc (b, _, dims, mem) when t.is_vector_mem mem ->
          let outer = match dims with [] -> [] | ds -> List.filteri (fun i _ -> i < List.length ds - 1) ds in
          let n =
            List.fold_left
              (fun acc d ->
                match (acc, Affine.of_expr d) with
                | Some acc, Some a -> (
                    match Affine.is_const a with
                    | Some n -> Some (acc * n)
                    | None -> None)
                | _ -> None)
              (Some 1) outer
          in
          (match n with
          | Some n -> vregs := !vregs + n
          | None ->
              fail "vregs" "allocation %a has a non-constant vector count" Sym.pp b)
      | _ -> ())
    p.p_body;
  if !vregs > t.max_vregs then
    fail "vregs" "%d vector registers live, budget is %d" !vregs t.max_vregs;
  (* scalar-ops: no scalar data op inside a symbolic loop *)
  (if e.vectorized then
     let rec walk in_sym body =
       List.iter
         (fun s ->
           match s with
           | (SAssign (b, _, _) | SReduce (b, _, _)) when in_sym ->
               fail "scalar-ops" "scalar op on %a inside a vectorized loop" Sym.pp b
           | SFor (_, lo, hi, inner) ->
               walk (in_sym || const_extent lo hi = None) inner
           | SIf (_, tb, eb) ->
               walk in_sym tb;
               walk in_sym eb
           | _ -> ())
         body
     in
     walk false p.p_body);
  (* census: steady-state instruction counts *)
  (match e.census with
  | None -> ()
  | Some expected ->
      let got = steady_census p in
      if got <> expected then
        fail "census" "steady census is %a, expected %a" pp_census got pp_census
          expected);
  (* effects: only the declared outputs are written *)
  let sg = Effects.proc_signature p in
  List.iter
    (fun (b, (fp : Effects.footprint)) ->
      if fp.Effects.writes <> None && not (List.mem (Sym.name b) e.writable) then
        fail "effects" "kernel writes argument %a, declared read-only" Sym.pp b)
    sg;
  {
    proc_name = p.p_name;
    vregs = !vregs;
    signature = Fmt.str "%a" Effects.pp_signature sg;
    findings = List.rev !findings;
  }

let pp_report ppf (r : report) =
  if ok r then Fmt.pf ppf "%s: ok (%d vregs)" r.proc_name r.vregs
  else
    Fmt.pf ppf "@[<v>%s: %d finding(s)@,%a@]" r.proc_name
      (List.length r.findings)
      (Fmt.list (fun ppf f -> Fmt.pf ppf "  [%s] %s" f.rule f.detail))
      r.findings
