(** Symbolic bounds checking.

    Verifies that every buffer access lies within the buffer's extents, with
    loop variables abstracted to their (affine) ranges and size parameters
    treated as symbolic values ≥ 1. The analysis is sound and incomplete:
    each access is [Proved], [Violated] (a counterexample exists for every
    size valuation), or [Unknown]. The generated micro-kernels are entirely
    affine, so tests demand [Proved] across the board. *)

open Exo_ir
open Ir

type verdict = Proved | Unknown | Violated

(** Affine forms over size parameters (and index arguments) only. *)
type interval = { lo : Affine.t option; hi : Affine.t option }
(** Inclusive endpoints; [None] = unbounded on that side. *)

type env = {
  sizes : Sym.Set.t;  (** symbols that stand for values ≥ 1 *)
  ranges : interval Sym.Map.t;  (** loop variables and bounded index args *)
  dims : (Dtype.t * expr list) Sym.Map.t;  (** buffer extents *)
}

let add_bound a b =
  match (a, b) with Some x, Some y -> Some (Affine.add x y) | _ -> None

let scale_bound k = Option.map (Affine.scale k)

(** Range of an affine expression under [env]: substitute each loop var by
    its endpoints according to its coefficient's sign. Size symbols remain
    symbolic. *)
let range_of_affine (env : env) (a : Affine.t) : interval =
  let base = Affine.const a.Affine.const in
  List.fold_left
    (fun acc (s, c) ->
      match Sym.Map.find_opt s env.ranges with
      | Some r ->
          let lo_c, hi_c = if c >= 0 then (r.lo, r.hi) else (r.hi, r.lo) in
          {
            lo = add_bound acc.lo (scale_bound c lo_c);
            hi = add_bound acc.hi (scale_bound c hi_c);
          }
      | None ->
          (* a size parameter or other free symbol: keep symbolic *)
          let t = Some (Affine.var ~coeff:c s) in
          { lo = add_bound acc.lo t; hi = add_bound acc.hi t })
    { lo = Some base; hi = Some base }
    a.Affine.terms

let range_of_expr env (e : expr) : interval option =
  Option.map (range_of_affine env) (Affine.of_expr e)

(** Is the affine form [a] provably ≥ 0 for every valuation with sizes ≥ 1?
    [`Yes] / [`No] (provably negative somewhere) / [`Maybe]. *)
let nonneg (env : env) (a : Affine.t) : [ `Yes | `No | `Maybe ] =
  let min_val =
    List.fold_left
      (fun acc (s, c) ->
        match acc with
        | None -> None
        | Some m ->
            if Sym.Set.mem s env.sizes then
              if c >= 0 then Some (m + c) (* size ≥ 1 *) else None (* unbounded above *)
            else None)
      (Some a.Affine.const) a.Affine.terms
  in
  match min_val with
  | Some m when m >= 0 -> `Yes
  | Some _ -> `No
  | None ->
      (* Some coefficient unbounded: provably violated only if *every*
         valuation fails, which we cannot establish here. *)
      if a.Affine.terms = [] then if a.Affine.const >= 0 then `Yes else `No else `Maybe

(** [nonneg_with_sizes sizes a] — non-negativity of [a] knowing only that
    the given symbols are ≥ 1 (used by scheduling trip-count proofs). *)
let nonneg_with_sizes (sizes : Sym.Set.t) (a : Affine.t) =
  nonneg { sizes; ranges = Sym.Map.empty; dims = Sym.Map.empty } a

(** [le env a b] — is a ≤ b provable? *)
let le env (a : Affine.t) (b : Affine.t) : [ `Yes | `No | `Maybe ] =
  nonneg env (Affine.sub b a)

let check_le env (a : Affine.t option) (b : Affine.t option) : verdict =
  match (a, b) with
  | Some a, Some b -> (
      match le env a b with `Yes -> Proved | `No -> Violated | `Maybe -> Unknown)
  | _ -> Unknown

type failure = { access : string; reason : string; verdict : verdict }

(* Domain-local: [check_proc] runs inside kernel generation, which the
   parallel sweeps call from several domains at once — a shared accumulator
   would interleave their failure lists. *)
let failures : failure list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let record access reason verdict =
  let fs = Domain.DLS.get failures in
  fs := { access; reason; verdict } :: !fs

(** Check one subscript [idx] against extent [dim]: 0 ≤ idx and idx ≤ dim-1. *)
let check_subscript env ~(what : string) (idx : expr) (dim : expr) : unit =
  match (Affine.of_expr idx, Affine.of_expr dim) with
  | Some ia, Some da ->
      let r = range_of_affine env ia in
      (match check_le env (Some Affine.zero) r.lo with
      | Proved -> ()
      | v -> record what (Fmt.str "lower bound of %s" (Pp.expr_to_string idx)) v);
      let dminus1 = Affine.sub da (Affine.const 1) in
      (match check_le env r.hi (Some dminus1) with
      | Proved -> ()
      | v ->
          record what
            (Fmt.str "upper bound: %s vs extent %s" (Pp.expr_to_string idx)
               (Pp.expr_to_string dim))
            v)
  | _ -> record what (Fmt.str "non-affine subscript %s" (Pp.expr_to_string idx)) Unknown

let check_access env (b : Sym.t) (idx : expr list) : unit =
  match Sym.Map.find_opt b env.dims with
  | None -> () (* unknown buffer: well-formedness catches this separately *)
  | Some (_, dims) ->
      if List.length dims = List.length idx then
        List.iteri
          (fun d (i, dim) ->
            check_subscript env
              ~what:(Fmt.str "%s[...] dim %d" (Sym.name b) d)
              i dim)
          (List.combine idx dims)

let check_window env (w : window) : unit =
  match Sym.Map.find_opt w.wbuf env.dims with
  | None -> ()
  | Some (_, dims) when List.length dims = List.length w.widx ->
      List.iteri
        (fun d (wa, dim) ->
          let what = Fmt.str "%s[...window...] dim %d" (Sym.name w.wbuf) d in
          match wa with
          | Pt e -> check_subscript env ~what e dim
          | Iv (lo, hi) -> (
              check_subscript env ~what lo dim;
              (* hi is exclusive: hi ≤ dim and lo ≤ hi *)
              match (Affine.of_expr hi, Affine.of_expr dim, Affine.of_expr lo) with
              | Some ha, Some da, Some la ->
                  let rh = range_of_affine env ha in
                  (match check_le env rh.hi (Some da) with
                  | Proved -> ()
                  | v -> record what "window upper end exceeds extent" v);
                  let diff = Affine.sub ha la in
                  (match nonneg env diff with
                  | `Yes -> ()
                  | `No -> record what "empty or negative window" Violated
                  | `Maybe -> record what "window extent not provably non-negative" Unknown)
              | _ -> record what "non-affine window bound" Unknown))
        (List.combine w.widx dims)
  | Some _ -> ()

let rec check_stmts env (body : stmt list) : env =
  List.fold_left
    (fun env s ->
      match s with
      | SAssign (b, idx, e) | SReduce (b, idx, e) ->
          check_access env b idx;
          check_expr env e;
          env
      | SFor (v, lo, hi, inner) ->
          check_expr env lo;
          check_expr env hi;
          let range =
            match (range_of_expr env lo, range_of_expr env hi) with
            | Some rlo, Some rhi ->
                { lo = rlo.lo; hi = add_bound rhi.hi (Some (Affine.const (-1))) }
            | _ -> { lo = None; hi = None }
          in
          ignore (check_stmts { env with ranges = Sym.Map.add v range env.ranges } inner);
          env
      | SAlloc (b, dt, dims, _) ->
          List.iter (check_expr env) dims;
          { env with dims = Sym.Map.add b (dt, dims) env.dims }
      | SCall (_, args) ->
          List.iter
            (function
              | AExpr e -> check_expr env e
              | AWin w -> check_window env w)
            args;
          env
      | SIf (c, t, e) ->
          check_expr env c;
          ignore (check_stmts env t);
          ignore (check_stmts env e);
          env)
    env body

and check_expr env (e : expr) : unit =
  (* Recursively check buffer reads inside expressions. *)
  ignore
    (map_expr
       (function
         | Read (b, idx) as e ->
             check_access env b idx;
             e
         | e -> e)
       e)

type report = { violations : failure list; unknowns : failure list }

(** Index-argument ranges mined from [assert] predicates of the shapes
    [v >= e] / [v < e] / [v <= e] / [v > e] (the fmla lane-index
    contract). Shared with {!Effects.ctx_of_proc}. *)
let pred_ranges (preds : expr list) : interval Sym.Map.t =
  let rec mine acc (e : expr) =
    match e with
    | And (a, b) -> mine (mine acc a) b
    | Cmp (Ge, Var v, e') -> update acc v ~lo:(Affine.of_expr e') ~hi:None
    | Cmp (Le, Var v, e') -> update acc v ~lo:None ~hi:(Affine.of_expr e')
    | Cmp (Lt, Var v, e') ->
        update acc v ~lo:None
          ~hi:(Option.map (fun a -> Affine.sub a (Affine.const 1)) (Affine.of_expr e'))
    | Cmp (Gt, Var v, e') ->
        update acc v
          ~lo:(Option.map (fun a -> Affine.add a (Affine.const 1)) (Affine.of_expr e'))
          ~hi:None
    | _ -> acc
  and update acc v ~lo ~hi =
    let cur =
      match Sym.Map.find_opt v acc with
      | Some r -> r
      | None -> { lo = None; hi = None }
    in
    let pick fresh old = match fresh with Some _ -> fresh | None -> old in
    Sym.Map.add v { lo = pick lo cur.lo; hi = pick hi cur.hi } acc
  in
  List.fold_left mine Sym.Map.empty preds

(** Bounds-check a whole procedure. Index-argument ranges are recovered from
    the procedure's [assert] predicates. *)
let check_proc (p : proc) : report =
  let failures = Domain.DLS.get failures in
  failures := [];
  let sizes =
    List.fold_left
      (fun acc a -> match a.a_typ with TSize -> Sym.Set.add a.a_name acc | _ -> acc)
      Sym.Set.empty p.p_args
  in
  let dims =
    List.fold_left
      (fun acc a ->
        match a.a_typ with
        | TTensor (dt, ds) -> Sym.Map.add a.a_name (dt, ds) acc
        | TScalar dt -> Sym.Map.add a.a_name (dt, []) acc
        | _ -> acc)
      Sym.Map.empty p.p_args
  in
  let ranges = pred_ranges p.p_preds in
  ignore (check_stmts { sizes; ranges; dims } p.p_body);
  let all = List.rev !failures in
  {
    violations = List.filter (fun f -> f.verdict = Violated) all;
    unknowns = List.filter (fun f -> f.verdict = Unknown) all;
  }

let pp_failure ppf f =
  Fmt.pf ppf "%s: %s (%s)" f.access f.reason
    (match f.verdict with Violated -> "violated" | Unknown -> "unknown" | Proved -> "ok")
