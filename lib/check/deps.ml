(** Loop dependence legality — now a client of the {!Effects} region
    signatures.

    [reorder_loops] and loop fission are only semantics-preserving in the
    absence of certain loop-carried dependences. Exo discharges these
    obligations with its effect system; the queries below ask {!Effects} for
    the MAY accesses of each block and decide legality with the region
    algebra. The analysis answers [Ok ()] only when legality is *proved*;
    any imprecision yields [Error reason]. Reductions ([+=], including
    instruction calls whose bodies reduce) are treated as reorderable
    amongst themselves, following Exo (floating-point reduction
    reassociation is an accepted part of the scheduling contract). *)

open Exo_ir
open Ir
module E = Effects

let is_write = E.is_write

(** Vars bound by loops inside a statement list. *)
let inner_binders (body : stmt list) : Sym.Set.t =
  let acc = ref Sym.Set.empty in
  iter_stmts (function SFor (v, _, _, _) -> acc := Sym.Set.add v !acc | _ -> ()) body;
  !acc

let coeff (a : Affine.t) (v : Sym.t) : int =
  match List.find_opt (fun (s, _) -> Sym.equal s v) a.Affine.terms with
  | Some (_, c) -> c
  | None -> 0

let vars_of (a : Affine.t) : Sym.Set.t =
  List.fold_left (fun s (v, _) -> Sym.Set.add v s) Sym.Set.empty a.Affine.terms

let drop_var (a : Affine.t) (v : Sym.t) : Affine.t =
  { a with Affine.terms = List.filter (fun (s, _) -> not (Sym.equal s v)) a.Affine.terms }

(** Do two accesses (to the same buffer) provably touch distinct cells
    whenever the fission/reorder variable [v] differs?

    The two access *instances* being compared come from different iterations:
    [v] and every variable in [volatile] (deeper binders) may take different
    values on each side; everything else (outer loop variables, sizes) is
    common. Each region dimension is normalized to an inclusive interval
    [lo, lo+n-1] with constant extent [n] (a point has [n] = 1; windowed
    instruction operands contribute real intervals). A dimension proves
    disjointness when neither endpoint mentions any volatile variable
    besides [v], and either

    - both sides have the same coefficient [c ≠ 0] on [v] with identical
      remainders and [|c| ≥ n] on both — the intervals then slide by
      [c·(i−j)], past each other's width; or
    - neither mentions [v] and the remainders differ by a constant at least
      one width (the intervals never alias at all). *)
let disjoint_when_var_differs ~(v : Sym.t) ~(volatile : Sym.Set.t)
    (a : E.access) (b : E.access) : bool =
  let others = Sym.Set.remove v volatile in
  let has_volatile (x : Affine.t) =
    not (Sym.Set.is_empty (Sym.Set.inter (vars_of x) others))
  in
  (* (lo, extent) with constant extent, or None *)
  let norm = function
    | E.DPt a -> Some (a, 1)
    | E.DIv (l, h) -> (
        match Affine.is_const (Affine.sub h l) with
        | Some n when n >= 0 -> Some (l, n + 1)
        | _ -> None)
    | E.DUnk -> None
  in
  List.length a.E.region = List.length b.E.region
  && List.exists2
       (fun da db ->
         match (norm da, norm db) with
         | Some (la, na), Some (lb, nb)
           when (not (has_volatile la)) && not (has_volatile lb) ->
             let ca = coeff la v and cb = coeff lb v in
             let d = Affine.sub (drop_var la v) (drop_var lb v) in
             if ca = cb && ca <> 0 then
               Affine.equal d Affine.zero && abs ca >= na && abs ca >= nb
             else if ca = 0 && cb = 0 then
               d.Affine.terms = [] && (d.Affine.const >= nb || -d.Affine.const >= na)
             else false
         | _ -> false)
       a.E.region b.E.region

let buf_groups (accs : E.access list) : (Sym.t * E.access list) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a : E.access) ->
      let cur = try Hashtbl.find tbl (Sym.id a.E.buf) with Not_found -> [] in
      Hashtbl.replace tbl (Sym.id a.E.buf) (a :: cur))
    accs;
  List.sort_uniq (fun a b -> Sym.compare a b) (List.map (fun (a : E.access) -> a.E.buf) accs)
  |> List.map (fun b -> (b, Hashtbl.find tbl (Sym.id b)))

(** Is executing [body] twice in a row the same as once? Effect criterion:
    no reductions (including via instruction calls), and no buffer both
    read and written — every write then stores a value computed from
    unchanged state, so the second execution stores the same values. *)
let idempotent (body : stmt list) : bool =
  let accs = E.collect body in
  let written, read =
    List.fold_left
      (fun (w, r) (a : E.access) ->
        match a.E.mode with
        | E.MWrite -> (Sym.Set.add a.E.buf w, r)
        | E.MRead -> (w, Sym.Set.add a.E.buf r)
        | E.MReduce -> (Sym.Set.add a.E.buf w, Sym.Set.add a.E.buf r))
      (Sym.Set.empty, Sym.Set.empty) accs
  in
  List.for_all
    (fun (a : E.access) -> a.E.mode <> E.MReduce)
    accs
  && Sym.Set.is_empty (Sym.Set.inter written read)

let written_bufs (body : stmt list) : Sym.Set.t =
  List.fold_left
    (fun acc (a : E.access) -> if is_write a then Sym.Set.add a.E.buf acc else acc)
    Sym.Set.empty (E.collect body)

(** The loop-invariant staging rule: [for v: pre; post ≡ (for v: pre);
    (for v: post)] when [pre] does not depend on [v], is idempotent, and
    nothing [post] writes feeds back into [pre]. Every iteration of the
    fissioned first loop then recomputes the same state [pre] had
    established before each original iteration. This is what lets operand
    loads staged by [bind_expr] fission out through loops whose variable
    they do not use (Fig. 9 of the paper). *)
let invariant_pre_rule ~(v : Sym.t) ~(pre : stmt list) ~(post : stmt list) : bool =
  (not (Sym.Set.mem v (stmts_free_vars pre)))
  && idempotent pre
  && Sym.Set.is_empty (Sym.Set.inter (written_bufs post) (stmts_bufs pre))

(** Legality of fissioning [for v: pre; post] into [for v: pre; for v: post].

    Requirement: no dependence from [post] at iteration [i] to [pre] at
    iteration [j > i] (the fissioned second loop runs strictly after the
    whole first loop). For each buffer with a write on one side and any
    access on the other, we prove cross-iteration region disjointness, or
    fall back to the reduce-reduce commutation rule; failing both, the
    whole split may still be justified by {!invariant_pre_rule}. *)
let fission_legal ~(v : Sym.t) ~(pre : stmt list) ~(post : stmt list) :
    (unit, string) result =
  let pre_accs = E.collect pre and post_accs = E.collect post in
  let volatile =
    Sym.Set.add v (Sym.Set.union (inner_binders pre) (inner_binders post))
  in
  let shared =
    List.filter_map
      (fun (b, post_g) ->
        match List.filter (fun (a : E.access) -> Sym.equal a.E.buf b) pre_accs with
        | [] -> None
        | pre_g -> Some (b, pre_g, post_g))
      (buf_groups post_accs)
  in
  let check_pair (b : Sym.t) (p : E.access) (q : E.access) =
    if (not (is_write p)) && not (is_write q) then Ok ()
    else if p.E.mode = E.MReduce && q.E.mode = E.MReduce then Ok ()
    else if disjoint_when_var_differs ~v ~volatile p q then Ok ()
    else
      Error
        (Fmt.str "cannot prove fission over %a safe: conflicting accesses to %a"
           Sym.pp v Sym.pp b)
  in
  let pairwise =
    List.fold_left
      (fun acc (b, pre_g, post_g) ->
        List.fold_left
          (fun acc q ->
            List.fold_left
              (fun acc p -> match acc with Error _ -> acc | Ok () -> check_pair b p q)
              acc pre_g)
          acc post_g)
      (Ok ()) shared
  in
  match pairwise with
  | Ok () -> Ok ()
  | Error _ when invariant_pre_rule ~v ~pre ~post -> Ok ()
  | Error _ as e -> e

(** Legality of swapping two perfectly nested loops [for v1: for v2: body].

    Sufficient conditions per buffer written in [body]: either every access
    is a reduction (reductions commute), or every pair of accesses with a
    write provably touches distinct cells when [v1] differs and when [v2]
    differs (iteration-private cells), with reads of the written buffer
    confined to a reduced region. *)
let reorder_legal ~(outer : Sym.t) ~(inner : Sym.t) ~(body : stmt list) :
    (unit, string) result =
  let accs = E.collect body in
  let volatile = Sym.Set.add outer (Sym.Set.add inner (inner_binders body)) in
  let check_group (b, group) =
    if List.for_all (fun a -> not (is_write a)) group then Ok ()
    else if
      List.for_all
        (fun (a : E.access) -> a.E.mode = E.MReduce || a.E.mode = E.MRead)
        group
      && List.for_all
           (fun (a : E.access) ->
             a.E.mode = E.MReduce
             ||
             (* reads of a reduced buffer must match a reduce region *)
             List.exists
               (fun (w : E.access) ->
                 w.E.mode = E.MReduce && E.region_equal w.E.region a.E.region)
               group)
           group
    then Ok ()
    else
      let writes = List.filter is_write group in
      (* Every (write, access) pair — including a write against itself, which
         compares two distinct iterations — must be provably disjoint under
         both reordered variables. *)
      let ok =
        List.for_all
          (fun w ->
            List.for_all
              (fun a ->
                disjoint_when_var_differs ~v:outer ~volatile w a
                && disjoint_when_var_differs ~v:inner ~volatile w a)
              group)
          writes
      in
      if ok then Ok ()
      else
        Error
          (Fmt.str "cannot prove reordering %a/%a safe: accesses to %a" Sym.pp outer
             Sym.pp inner Sym.pp b)
  in
  List.fold_left
    (fun acc g -> match acc with Error _ -> acc | Ok () -> check_group g)
    (Ok ())
    (buf_groups accs)
