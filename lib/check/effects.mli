(** Static effect inference — the reproduction of Exo's effect system.

    Computes, for any statement block or whole procedure, its read / write /
    reduce *region signatures*: per-buffer sets of affine index regions,
    together with a region algebra deciding disjointness and containment
    under the size-symbol constraints (sizes ≥ 1, loop-variable ranges mined
    from [for] bounds and [assert] predicates via {!Bounds}). The scheduling
    legality oracles ({!Deps}, the staging checks, and the per-step
    [check_proc_result] certificate) are all queries against these
    signatures. Everything here is MAY-analysis: an access that cannot be
    normalized is widened, never dropped, so [Ok]/[true] answers are sound
    and a failure to prove reads as "unknown", not "illegal". *)

(** {1 Accesses} *)

type mode = MRead | MWrite | MReduce

(** One dimension of an access region: a point, an inclusive affine
    interval, or unanalyzable. *)
type dim =
  | DPt of Exo_ir.Affine.t
  | DIv of Exo_ir.Affine.t * Exo_ir.Affine.t  (** inclusive [lo, hi] *)
  | DUnk

type region = dim list

type access = { buf : Exo_ir.Sym.t; mode : mode; region : region }

val is_write : access -> bool

(** Region of a window's index list ([Iv] upper ends are exclusive in the
    IR and inclusive here). *)
val window_region : Exo_ir.Ir.waccess list -> region

(** Every access performed by a statement list, in MAY semantics. Call
    windows are mapped through the callee's inferred per-parameter modes
    (so a load instruction's source window is a read, not a conservative
    write); callees without a body are treated as read+write. *)
val collect : Exo_ir.Ir.stmt list -> access list

(** Per-parameter access modes of a callee, inferred from its body.
    Parameters never accessed report []. *)
val param_modes : Exo_ir.Ir.proc -> (Exo_ir.Sym.t * mode list) list

(** {1 Contexts} *)

type ctx = {
  sizes : Exo_ir.Sym.Set.t;  (** symbols standing for values ≥ 1 *)
  ranges : Bounds.interval Exo_ir.Sym.Map.t;  (** loop vars and index args *)
}

val ctx_empty : ctx

(** Sizes from [TSize] arguments, ranges mined from the proc's [assert]
    predicates. *)
val ctx_of_proc : Exo_ir.Ir.proc -> ctx

(** Push a loop binder [v in seq(lo, hi)] (half-open) onto the context. *)
val ctx_push_loop : ctx -> Exo_ir.Sym.t -> Exo_ir.Ir.expr -> Exo_ir.Ir.expr -> ctx

(** Like {!collect}, but pairing each access with the context at its site
    (enclosing loop ranges pushed). *)
val collect_sited : ctx -> Exo_ir.Ir.stmt list -> (ctx * access) list

(** {1 Region algebra} *)

(** Provable [a ≤ b] / [a < b] for every valuation admitted by [ctx]. *)
val aff_le : ctx -> Exo_ir.Affine.t -> Exo_ir.Affine.t -> bool

val aff_lt : ctx -> Exo_ir.Affine.t -> Exo_ir.Affine.t -> bool

(** Provably no cell in common (equal rank and some provably separated
    dimension). *)
val region_disjoint : ctx -> region -> region -> bool

(** Provably every cell of [inner] lies in [outer]. *)
val region_contains : ctx -> outer:region -> inner:region -> bool

(** Structural per-dimension affine equality. *)
val region_equal : region -> region -> bool

(** Loop/size symbols mentioned by the region's affine forms. *)
val region_vars : region -> Exo_ir.Sym.Set.t

(** Provable [lo ≤ a < hi_excl]. *)
val in_range :
  ctx -> Exo_ir.Affine.t -> lo:Exo_ir.Affine.t -> hi_excl:Exo_ir.Affine.t -> bool

(** [covers ~ranges_of idx extents] — do the subscripts [idx], as their
    variables sweep the ranges [ranges_of] reports (half-open [0, ext)
    ranges), cover a box of the given extents exactly once (a mixed-radix
    bijection)? This is the staging-coverage obligation of [stage_mem]'s
    load/store elision. *)
val covers :
  ranges_of:(Exo_ir.Sym.t -> (int * int) option) ->
  Exo_ir.Affine.t list ->
  int list ->
  bool

(** {1 Whole-proc signatures} *)

type boxdim = { blo : Exo_ir.Affine.t option; bhi : Exo_ir.Affine.t option }
(** Inclusive bounds over size symbols only; [None] = unbounded. *)

type box = boxdim list

type footprint = { reads : box option; writes : box option }
(** Per-buffer MAY footprint; [None] = no access of that class. Reduces
    count as both read and write. *)

(** Footprint of every tensor/scalar *argument* buffer (internal allocs are
    invisible to callers). *)
val proc_signature : Exo_ir.Ir.proc -> (Exo_ir.Sym.t * footprint) list

(** [preserves ~old_p ~new_p] — the effect-preservation certificate checked
    after every scheduling rewrite: [new_p] must not write an argument
    buffer [old_p] did not write, must not read a buffer [old_p] never
    touched, and must not *provably* escape [old_p]'s per-buffer footprint
    hull. Incomparable bounds pass (MAY-analysis); only provable violations
    are errors. *)
val preserves : old_p:Exo_ir.Ir.proc -> new_p:Exo_ir.Ir.proc -> (unit, string) result

val pp_footprint : Format.formatter -> footprint -> unit
val pp_signature : Format.formatter -> (Exo_ir.Sym.t * footprint) list -> unit

(** {1 Shape helpers for the staging primitives} *)

(** Variables occurring in a list of (index or extent) expressions, using
    the affine view when available and falling back to [expr_vars]. *)
val shape_vars : Exo_ir.Ir.expr list -> Exo_ir.Sym.Set.t
