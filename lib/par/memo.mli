(** Domain-safe memo tables: a mutex-guarded hashtable with the compute
    step outside the lock.

    First writer wins — racing domains all receive the value inserted
    first, so repeated lookups stay physically equal ([==]). Computes must
    be pure; under contention a compute may run once per racing domain (the
    losers' values are dropped). See the implementation header for the full
    domain-safety contract, and use [Domain.DLS] instead for state that is
    mutable per use (compiled-kernel frames). *)

type ('a, 'b) t

val create : ?size:int -> unit -> ('a, 'b) t

(** The memoized value for the key, computing and caching it if absent. *)
val find_or_add : ('a, 'b) t -> 'a -> (unit -> 'b) -> 'b

val find_opt : ('a, 'b) t -> 'a -> 'b option
val mem : ('a, 'b) t -> 'a -> bool
val length : ('a, 'b) t -> int
val clear : ('a, 'b) t -> unit
