(** Fixed-width domain pool for data-parallel sweeps.

    One engine behind every sweep in the repo: a fixed number of domains
    consume a chunked work queue (atomic cursor, a few items per grab) and
    write results into index-addressed slots, so for a pure [f] the output
    of [map pool f xs] equals [List.map f xs] for every pool width. At
    width 1 (the sequential fallback — one core, [--jobs 1], or a
    single-item list) no domain is spawned at all.

    Domains are region-scoped: each [map] spawns [width - 1] workers, the
    caller works too, and all join before [map] returns — nothing leaks
    past a parallel region.

    If [f] raises, the pool stops handing out chunks, joins, and re-raises
    the exception of the lowest-indexed failing item (deterministic). *)

type t

(** [create ?jobs ()] — a pool of [jobs] domains (default: the process-wide
    width, see {!default_jobs}). Clamped to at least 1. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** The process-wide default width: the last {!set_default_jobs}, else the
    [EXO_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** Override the process-wide default width (the [--jobs] flags). *)
val set_default_jobs : int -> unit

(** A pool at the process-wide default width. *)
val global : unit -> t

(** Parallel map with deterministic (input-order) results. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
val iter : t -> ('a -> unit) -> 'a list -> unit
