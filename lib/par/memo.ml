(** Domain-safe memo tables.

    The execution story built in PR 1 and PR 2 leans on global memo caches:
    generated kernels ({!Exo_blis.Registry}), full-GEMM prices
    ({!Exo_blis.Driver}), tuner rankings ({!Exo_blis.Tuner}). A plain
    [Hashtbl] corrupts under concurrent [replace] from several domains —
    resized buckets race and lookups can crash or spin. This module is the
    one domain-safe wrapper they all go through: a mutex-guarded table with
    the compute step OUTSIDE the lock.

    Contract:
    - the lock is held only for table lookups and inserts, never while the
      caller's compute function runs — so a memoized compute may itself hit
      other memo tables (the Registry's kernel cache inside the Driver's
      time cache) without lock-ordering deadlocks;
    - first writer wins: when two domains race to fill the same key, the
      value inserted first is returned to both, so repeated lookups are
      physically equal ([==]) ever after — the property the memoization
      tests pin. The loser's computed value is dropped;
    - a compute may therefore run more than once per key under contention
      (never more than once per racing domain). Computes must be pure.

    Per-DOMAIN state (compiled kernels, whose closures carry mutable frame
    slots and are not re-entrant across domains) does not belong here — use
    [Domain.DLS] for those; see {!Exo_blis.Registry.exo_compiled}. *)

type ('a, 'b) t = { lock : Mutex.t; tbl : ('a, 'b) Hashtbl.t }

let create ?(size = 32) () = { lock = Mutex.create (); tbl = Hashtbl.create size }

let[@inline] locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let find_opt t k = locked t (fun () -> Hashtbl.find_opt t.tbl k)
let mem t k = locked t (fun () -> Hashtbl.mem t.tbl k)
let length t = locked t (fun () -> Hashtbl.length t.tbl)
let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

(** [find_or_add t k compute] — the memoized value for [k], computing it
    (outside the lock) if absent. First writer wins. *)
let find_or_add (t : ('a, 'b) t) (k : 'a) (compute : unit -> 'b) : 'b =
  match find_opt t k with
  | Some v -> v
  | None ->
      let v = compute () in
      locked t (fun () ->
          match Hashtbl.find_opt t.tbl k with
          | Some w -> w (* another domain won the race; keep its value *)
          | None ->
              Hashtbl.add t.tbl k v;
              v)
