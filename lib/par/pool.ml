(** A fixed-width domain pool for data-parallel sweeps.

    Every sweep in the repo — tuner candidate pricing, the 52-kernel lint
    gate, the per-figure experiment rows, the multi-configuration cache
    ablation — is an embarrassingly parallel map over an independent work
    list. This module is the one engine behind them all: a pool of a fixed
    number of domains consuming a chunked work queue (an atomic cursor over
    the input array, a handful of items per grab so long-tailed items
    rebalance), with results written into index-addressed slots so the
    output order is exactly the input order no matter which domain computed
    what. At one core (or [jobs = 1]) no domain is ever spawned and the map
    degenerates to a plain sequential [Array.map].

    Determinism contract: for a pure [f], [map pool f xs] returns the same
    list as [List.map f xs] for every pool width. Callers that memoize
    through {!Memo} keep that guarantee because memo caches are keyed, not
    ordered.

    Exceptions: if any application of [f] raises, the pool stops handing out
    new chunks, joins every domain, and re-raises the exception of the
    lowest-indexed failing item (a deterministic choice, unlike
    first-to-fail). *)

(* Worker domains live for one parallel region: [map] spawns [width - 1]
   domains, the calling domain works too, and everyone joins at the end.
   Spawning a domain costs tens of microseconds — noise against the
   millisecond-scale items these sweeps process — and a region-scoped
   lifetime cannot leak domains or deadlock a condition variable on exit. *)

type t = { jobs : int }

let env_jobs () =
  match Sys.getenv_opt "EXO_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)
  | None -> None

let global_jobs : int Atomic.t = Atomic.make 0 (* 0 = not yet resolved *)

let default_jobs () =
  match Atomic.get global_jobs with
  | j when j >= 1 -> j
  | _ ->
      let j =
        match env_jobs () with
        | Some j -> j
        | None -> Domain.recommended_domain_count ()
      in
      Atomic.set global_jobs j;
      j

(** Override the process-wide default width ([--jobs]/[-j] in the CLIs).
    Values below 1 are clamped to 1. *)
let set_default_jobs j = Atomic.set global_jobs (max 1 j)

let create ?jobs () = { jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) }
let jobs t = t.jobs

(** The process-wide pool: width from [set_default_jobs], else [EXO_JOBS],
    else [Domain.recommended_domain_count ()]. *)
let global () = create ()

let map_array (t : t) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let width = min t.jobs n in
  (* every item runs under an [Obs.task_scope] keyed by (region epoch,
     item index), which is what makes merged traces pool-width-invariant;
     one extra branch per item when tracing is off *)
  let epoch = if Exo_obs.Obs.enabled () then Exo_obs.Obs.region_begin () else -1 in
  let apply i x =
    if epoch >= 0 then Exo_obs.Obs.task_scope ~epoch i (fun () -> f x) else f x
  in
  if width <= 1 then Array.mapi apply xs
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let failed = Atomic.make false in
    (* a few chunks per domain so a slow item doesn't serialize the tail *)
    let chunk = max 1 (n / (width * 4)) in
    let worker () =
      let continue = ref true in
      while !continue do
        if Atomic.get failed then continue := false
        else begin
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then continue := false
          else
            for i = start to min n (start + chunk) - 1 do
              match apply i xs.(i) with
              | y -> results.(i) <- Some (Ok y)
              | exception e ->
                  results.(i) <- Some (Error e);
                  Atomic.set failed true
            done
        end
      done
    in
    let domains = List.init (width - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    if Atomic.get failed then begin
      (* deterministic: re-raise the lowest-indexed failure *)
      Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
      assert false
    end;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error _) -> assert false
        | None ->
            (* unreachable unless [failed] was set, handled above *)
            assert false)
      results
  end

let map (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map_array t f (Array.of_list xs))

let iter (t : t) (f : 'a -> unit) (xs : 'a list) : unit =
  ignore (map t f xs)
