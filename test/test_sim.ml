(* Performance simulator: the Fig. 12 op census, model invariants, and the
   solo-mode (Fig. 13) orderings. *)

open Exo_ir
module T = Exo_sim.Trace
module KM = Exo_sim.Kernel_model
module M = Exo_isa.Machine
module Family = Exo_ukr_gen.Family

let proc_of mr nr = (Family.generate ~mr ~nr ()).Family.proc
let impl_of mr nr = KM.of_proc ~name:"EXO" ~mr ~nr (proc_of mr nr)

(* --- trace census ------------------------------------------------------ *)

let test_fig12_census () =
  (* Fig. 12's k-loop: 5 × 128-bit loads (2 A + 3 B) and 24 fmla, with all
     accumulators resident (29 vector registers ≤ 32) *)
  let t = T.of_proc (proc_of 8 12) in
  Alcotest.(check int) "24 fmla per iteration" 24 t.T.steady.T.fma;
  Alcotest.(check int) "5 loads per iteration" 5 t.T.steady.T.load;
  Alcotest.(check int) "no stores in the k loop" 0 t.T.steady.T.store;
  Alcotest.(check int) "24 C loads in the prologue" 24 t.T.prologue.T.load;
  Alcotest.(check int) "24 C stores in the epilogue" 24 t.T.prologue.T.store;
  Alcotest.(check int) "29 vector registers" 29 t.T.vregs_used;
  Alcotest.(check int) "4 lanes" 4 t.T.lanes

let test_census_scaling () =
  (* census scales with the kernel shape: fma = (mr/4)·nr *)
  List.iter
    (fun (mr, nr) ->
      let t = T.of_proc (proc_of mr nr) in
      Alcotest.(check int)
        (Fmt.str "%dx%d fma" mr nr)
        (mr / 4 * nr) t.T.steady.T.fma;
      Alcotest.(check int)
        (Fmt.str "%dx%d loads" mr nr)
        ((mr / 4) + (nr / 4))
        t.T.steady.T.load)
    [ (8, 8); (8, 4); (4, 12); (4, 4) ]

let test_census_row_kernel () =
  let t = T.of_proc (proc_of 1 12) in
  Alcotest.(check int) "1x12: 3 B loads" 3 t.T.steady.T.load;
  Alcotest.(check int) "1x12: 3 scalar-fma ops" 3 t.T.steady.T.fma

let test_census_scalar_kernel () =
  let t = T.of_proc (proc_of 3 5) in
  Alcotest.(check int) "scalar kernel: no vector ops" 0 (T.total_vector_ops t.T.steady);
  Alcotest.(check int) "15 scalar ops per iteration" 15 t.T.steady.T.scalar_ops

let test_census_f16 () =
  let k = Family.generate ~kit:Exo_ukr_gen.Kits.neon_f16 ~mr:8 ~nr:16 () in
  let t = T.of_proc k.Family.proc in
  Alcotest.(check int) "f16 lanes" 8 t.T.lanes;
  Alcotest.(check int) "f16 8x16: 16 fmla" 16 t.T.steady.T.fma

(* --- kernel model ------------------------------------------------------ *)

let test_peak_bound () =
  (* no kernel exceeds the machine peak *)
  List.iter
    (fun (mr, nr) ->
      let impl = impl_of mr nr in
      let g = KM.solo_gflops M.carmel impl ~mu:mr ~nu:nr ~kc:512 in
      Alcotest.(check bool)
        (Fmt.str "%dx%d ≤ peak" mr nr)
        true
        (g <= M.peak_gflops M.carmel Dtype.F32 +. 1e-9))
    Family.paper_shapes

let test_8x12_near_peak () =
  let g = KM.solo_gflops M.carmel (impl_of 8 12) ~mu:8 ~nu:12 ~kc:512 in
  Alcotest.(check bool) "8x12 ≥ 95% of peak" true
    (g >= 0.95 *. M.peak_gflops M.carmel Dtype.F32)

let test_latency_bound_narrow_kernels () =
  (* 4x4 has only 4 accumulators: the dependency bound must bite *)
  let c44 = KM.cycles_per_iter M.carmel (impl_of 4 4) in
  Alcotest.(check (float 0.001)) "4x4 latency-bound" (float_of_int M.carmel.M.fma_lat) c44;
  let c812 = KM.cycles_per_iter M.carmel (impl_of 8 12) in
  Alcotest.(check (float 0.001)) "8x12 throughput-bound" 12.0 c812

let test_kc_monotone () =
  (* longer k loops amortize the prologue: GFLOPS non-decreasing in kc *)
  let impl = impl_of 8 12 in
  let g kc = KM.solo_gflops M.carmel impl ~mu:8 ~nu:12 ~kc in
  Alcotest.(check bool) "monotone in kc" true (g 32 <= g 128 && g 128 <= g 512)

let test_fig13_orderings () =
  let base = proc_of 8 12 in
  let blis = KM.blis_asm_8x12 base and neon = KM.neon_intrinsics_8x12 base in
  let exo = impl_of 8 12 in
  let g impl mu nu = KM.solo_gflops M.carmel impl ~mu ~nu ~kc:512 in
  (* at the native 8x12 size: EXO ≥ BLIS > NEON, all close *)
  let ge = g exo 8 12 and gb = g blis 8 12 and gn = g neon 8 12 in
  Alcotest.(check bool) "EXO ≥ BLIS" true (ge >= gb);
  Alcotest.(check bool) "BLIS > NEON" true (gb > gn);
  Alcotest.(check bool) "differences are minor (< 10%)" true (gn >= 0.9 *. ge);
  (* on every edge case the specialized kernel wins clearly *)
  List.iter
    (fun (mu, nu) ->
      if (mu, nu) <> (8, 12) then begin
        let gexo = g (impl_of mu nu) mu nu in
        Alcotest.(check bool)
          (Fmt.str "EXO wins %dx%d vs BLIS" mu nu)
          true
          (gexo > g blis mu nu);
        Alcotest.(check bool)
          (Fmt.str "EXO wins %dx%d vs NEON" mu nu)
          true
          (gexo > g neon mu nu)
      end)
    Family.paper_shapes

let test_edge_utilization_factor () =
  (* the monolithic kernel's 8x4 performance is ~1/3 of its 8x12 (lane and
     tile utilization), as in Fig. 13 *)
  let blis = KM.blis_asm_8x12 (proc_of 8 12) in
  let full = KM.solo_gflops M.carmel blis ~mu:8 ~nu:12 ~kc:512 in
  let third = KM.solo_gflops M.carmel blis ~mu:8 ~nu:4 ~kc:512 in
  Alcotest.(check bool) "8x4 ≈ 1/3 of 8x12" true
    (Float.abs ((third /. full) -. (1.0 /. 3.0)) < 0.05)

let test_specialized_misuse_rejected () =
  let exo = impl_of 8 12 in
  Alcotest.(check bool) "foreign shape rejected" true
    (try
       ignore (KM.solo_gflops M.carmel exo ~mu:8 ~nu:8 ~kc:512);
       false
     with Invalid_argument _ -> true)

let test_spill_model () =
  (* a synthetic trace using more registers than the file must be slower *)
  let impl = impl_of 8 12 in
  let big_trace =
    { impl.KM.trace with T.vregs_used = 40 }
  in
  let spilled = { impl with KM.trace = big_trace; KM.name = "spilled" } in
  Alcotest.(check bool) "spills cost cycles" true
    (KM.cycles_per_iter M.carmel spilled > KM.cycles_per_iter M.carmel impl)

let test_fringe_copy_scales_with_dbytes () =
  (* regression: the monolithic fringe copy (temp tile write + read back)
     used to hardwire 8 bytes per element — correct only for f32. It is
     charged at the kernel's element size, so an f16 kernel's fringe
     penalty is half an f32 one's. *)
  let blis = KM.blis_asm_8x12 (proc_of 8 12) in
  let mu, nu, kc = (8, 4, 512) in
  let expect dbytes =
    let cycles =
      KM.call_cycles M.carmel blis ~kc
      +. (float_of_int (8 * 12 * dbytes * 2) /. M.carmel.M.l1_bw)
    in
    2.0 *. float_of_int (mu * nu * kc)
    /. (cycles /. (M.carmel.M.freq_ghz *. 1e9))
    /. 1e9
  in
  Alcotest.(check (float 1e-9)) "default charges 4-byte elements" (expect 4)
    (KM.solo_gflops M.carmel blis ~mu ~nu ~kc);
  Alcotest.(check (float 1e-9)) "f16 fringe copy moves half the bytes"
    (expect 2)
    (KM.solo_gflops ~dbytes:2 M.carmel blis ~mu ~nu ~kc);
  Alcotest.(check bool) "cheaper copy, higher GFLOPS" true
    (KM.solo_gflops ~dbytes:2 M.carmel blis ~mu ~nu ~kc
    > KM.solo_gflops M.carmel blis ~mu ~nu ~kc)

let test_f16_doubles_peak () =
  let k = Family.generate ~kit:Exo_ukr_gen.Kits.neon_f16 ~mr:16 ~nr:24 () in
  let impl = KM.of_proc ~name:"EXO-f16" ~mr:16 ~nr:24 k.Family.proc in
  let g = KM.solo_gflops M.carmel_fp16 impl ~mu:16 ~nu:24 ~kc:512 in
  Alcotest.(check bool) "f16 exceeds the f32 peak" true
    (g > M.peak_gflops M.carmel Dtype.F32)

(* --- scoreboard --------------------------------------------------------- *)

let test_scoreboard_matches_closed_form () =
  (* the instruction-level OoO simulation must agree with the closed-form
     pipe/latency model on every paper kernel *)
  List.iter
    (fun (mr, nr) ->
      let p = proc_of mr nr in
      let closed = KM.cycles_per_iter M.carmel (impl_of mr nr) in
      let sim = Exo_sim.Scoreboard.cycles_per_iter M.carmel p in
      Alcotest.(check bool)
        (Fmt.str "%dx%d: closed %.2f vs scoreboard %.2f" mr nr closed sim)
        true
        (Float.abs (sim -. closed) /. closed < 0.15))
    Family.paper_shapes

let test_scoreboard_8x12_exact () =
  Alcotest.(check (float 0.01)) "8x12 is throughput-bound at 12 cycles" 12.0
    (Exo_sim.Scoreboard.cycles_per_iter M.carmel (proc_of 8 12))

let test_scoreboard_latency_bound () =
  (* 4x4: 4 accumulators, 2 pipes, latency 5 → the chain binds at 5 *)
  Alcotest.(check (float 0.01)) "4x4 latency chain" 5.0
    (Exo_sim.Scoreboard.cycles_per_iter M.carmel (proc_of 4 4))

let test_scoreboard_sensitive_to_latency () =
  let slow = { M.carmel with M.fma_lat = 9 } in
  let fast = { M.carmel with M.fma_lat = 3 } in
  let p = proc_of 8 4 in
  let s = Exo_sim.Scoreboard.cycles_per_iter slow p in
  let f = Exo_sim.Scoreboard.cycles_per_iter fast p in
  Alcotest.(check bool) "longer FMA latency slows narrow kernels" true (s > f)

let test_scoreboard_single_pipe () =
  let one_pipe = { M.carmel with M.fma_pipes = 1 } in
  let p = proc_of 8 12 in
  Alcotest.(check (float 0.01)) "one pipe doubles the 8x12 iteration" 24.0
    (Exo_sim.Scoreboard.cycles_per_iter one_pipe p)

(* --- cache simulator ----------------------------------------------------- *)

let toy_machine =
  {
    M.carmel with
    M.l1 = { M.size_kib = 8; assoc = 4; line_bytes = 64 };
    l2 = { M.size_kib = 64; assoc = 8; line_bytes = 64 };
    l3 = { M.size_kib = 256; assoc = 8; line_bytes = 64 };
  }

let test_cache_lru_behaviour () =
  let l =
    Exo_sim.Cache_sim.create_level ~name:"t"
      { M.size_kib = 1; assoc = 2; line_bytes = 64 }
  in
  (* 1 KiB, 2-way, 64 B lines → 8 sets; addresses 0 and 8*64 share set 0 *)
  Alcotest.(check bool) "cold miss" false (Exo_sim.Cache_sim.access_level l 0);
  Alcotest.(check bool) "hit" true (Exo_sim.Cache_sim.access_level l 0);
  Alcotest.(check bool) "same-set different tag misses" false
    (Exo_sim.Cache_sim.access_level l (8 * 64));
  Alcotest.(check bool) "both ways resident" true (Exo_sim.Cache_sim.access_level l 0);
  (* a third tag in the set evicts the LRU (which is addr 8*64) *)
  ignore (Exo_sim.Cache_sim.access_level l (16 * 64));
  Alcotest.(check bool) "LRU evicted" false (Exo_sim.Cache_sim.access_level l (8 * 64))

let test_cache_within_line_hits () =
  let l =
    Exo_sim.Cache_sim.create_level ~name:"t"
      { M.size_kib = 1; assoc = 2; line_bytes = 64 }
  in
  ignore (Exo_sim.Cache_sim.access_level l 128);
  Alcotest.(check bool) "same line, different byte" true
    (Exo_sim.Cache_sim.access_level l 156)

let run_blocking ~mc ~kc ~nc =
  Exo_sim.Cache_sim.gemm_trace toy_machine ~mc ~kc ~nc ~mr:8 ~nr:12 ~m:288 ~n:288
    ~k:288

let test_cache_analytical_beats_none () =
  let b = Exo_blis.Analytical.compute toy_machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let good = run_blocking ~mc:b.Exo_blis.Analytical.mc ~kc:b.Exo_blis.Analytical.kc
               ~nc:b.Exo_blis.Analytical.nc in
  let bad = run_blocking ~mc:288 ~kc:288 ~nc:288 in
  Alcotest.(check bool)
    (Fmt.str "DRAM traffic: analytical %d < unblocked %d lines"
       good.Exo_sim.Cache_sim.dram bad.Exo_sim.Cache_sim.dram)
    true
    (float_of_int good.Exo_sim.Cache_sim.dram
    < 0.6 *. float_of_int bad.Exo_sim.Cache_sim.dram)

let test_cache_kernel_l1_resident () =
  let b = Exo_blis.Analytical.compute toy_machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let s = run_blocking ~mc:b.Exo_blis.Analytical.mc ~kc:b.Exo_blis.Analytical.kc
            ~nc:b.Exo_blis.Analytical.nc in
  Alcotest.(check bool) "kernel-phase L1 misses stay low" true
    (Exo_sim.Cache_sim.kernel_l1_rate s < 0.10)

let test_cache_trace_deterministic () =
  let a = run_blocking ~mc:24 ~kc:16 ~nc:24 in
  let b = run_blocking ~mc:24 ~kc:16 ~nc:24 in
  Alcotest.(check int) "deterministic refs" a.Exo_sim.Cache_sim.refs
    b.Exo_sim.Cache_sim.refs;
  Alcotest.(check int) "deterministic dram" a.Exo_sim.Cache_sim.dram
    b.Exo_sim.Cache_sim.dram

(* --- compressed-trace equivalence and pinned counts ---------------------- *)

module CS = Exo_sim.Cache_sim

(* The exact per-level counters of the original per-element simulator at
   288³ on the toy hierarchy, for three representative blockings. The
   compressed stride-run path must reproduce them bit for bit. *)
let test_cache_pinned_counts () =
  let b = Exo_blis.Analytical.compute toy_machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  Alcotest.(check (list int))
    "toy analytical blocking" [ 192; 64; 636 ]
    [ b.Exo_blis.Analytical.mc; b.Exo_blis.Analytical.kc; b.Exo_blis.Analytical.nc ];
  let pin name (mc, kc, nc) (refs, l1, l2, l3, dram, krefs, kl1) =
    let s = run_blocking ~mc ~kc ~nc in
    Alcotest.(check (list int))
      (name ^ " counters")
      [ refs; l1; l2; l3; dram; krefs; kl1 ]
      [
        s.CS.refs; s.CS.l1_miss; s.CS.l2_miss; s.CS.l3_miss; s.CS.dram;
        s.CS.kernel_refs; s.CS.kernel_l1_miss;
      ]
  in
  pin "analytical" (192, 64, 636)
    (6137856, 212544, 118501, 47309, 47309, 5806080, 186624);
  pin "unblocked" (288, 288, 288)
    (5474304, 386784, 160704, 160704, 160704, 5142528, 331776);
  pin "tiny" (24, 16, 24)
    (10119168, 214582, 102447, 74929, 74929, 7962624, 144132)

let gen_sim_case =
  let open QCheck2.Gen in
  let cache lo hi =
    let* size_kib = int_range lo hi in
    let* assoc = oneofl [ 1; 2; 3; 4; 8 ] in
    let* line_bytes = oneofl [ 32; 48; 64 ] in
    return { M.size_kib; assoc; line_bytes }
  in
  (* sizes in KiB deliberately include non-powers-of-two (3 KiB / 4-way /
     64 B → 12 sets) so the generic div/mod indexing path is exercised
     alongside the pow2 shift/mask fast path *)
  let* l1 = cache 1 4 in
  let* l2 = cache 4 16 in
  let* l3 = cache 16 64 in
  let* m = int_range 1 40 in
  let* n = int_range 1 40 in
  let* k = int_range 1 40 in
  let* mr = oneofl [ 1; 2; 4; 8 ] in
  let* nr = oneofl [ 1; 3; 4; 12 ] in
  let* mc = int_range 1 48 in
  let* kc = int_range 1 48 in
  let* nc = int_range 1 48 in
  return ((l1, l2, l3), (m, n, k), (mr, nr), (mc, kc, nc))

let print_sim_case ((l1, l2, l3), (m, n, k), (mr, nr), (mc, kc, nc)) =
  Fmt.str
    "L1=%dK/%d/%d L2=%dK/%d/%d L3=%dK/%d/%d m=%d n=%d k=%d mr=%d nr=%d mc=%d \
     kc=%d nc=%d"
    l1.M.size_kib l1.M.assoc l1.M.line_bytes l2.M.size_kib l2.M.assoc
    l2.M.line_bytes l3.M.size_kib l3.M.assoc l3.M.line_bytes m n k mr nr mc kc
    nc

(* The tentpole's safety net: on random shapes, blockings and cache
   geometries the compressed stride-run consumer and the element-level
   oracle agree on EVERY statistic — accesses, per-level misses, DRAM
   fills, kernel-phase counters, writes and writebacks. *)
let test_run_vs_element_qcheck =
  QCheck2.Test.make ~name:"compressed trace ≡ element-level oracle" ~count:60
    ~print:print_sim_case gen_sim_case
    (fun ((l1, l2, l3), (m, n, k), (mr, nr), (mc, kc, nc)) ->
      let machine = { M.carmel with M.l1; l2; l3 } in
      let fast = CS.gemm_trace machine ~mc ~kc ~nc ~mr ~nr ~m ~n ~k in
      let slow = CS.gemm_trace_element machine ~mc ~kc ~nc ~mr ~nr ~m ~n ~k in
      fast = slow)

let test_cache_rw_and_writebacks () =
  let s = run_blocking ~mc:192 ~kc:64 ~nc:636 in
  (* every packed element is written once and every C element is written
     once per pc iteration: writes = 2·(packB + packA + C-store) share *)
  let packb = 288 * 288 (* one full pass over B *) in
  let packa = 288 * 288 * ((288 + 635) / 636) (* A repacked per jc block *) in
  let cstore = 288 * 288 * ((288 + 63) / 64) (* C stored per pc block *) in
  Alcotest.(check int) "store count" (packb + packa + cstore) s.CS.writes;
  Alcotest.(check bool) "dirty lines do get written back" true (s.CS.l1_wb > 0);
  Alcotest.(check bool) "writebacks reach memory" true (s.CS.dram_wb > 0);
  (* written data is bounded by what was ever dirtied: DRAM writeback lines
     cannot exceed the distinct lines of packA + packB + C *)
  let line = 64 and sz = 4 in
  let dirty_footprint =
    ((288 * 288 * sz) + (192 * 64 * sz) + (636 * 64 * sz) + (line - 1)) / line
  in
  Alcotest.(check bool)
    (Fmt.str "dram_wb %d ≤ dirty footprint bound" s.CS.dram_wb)
    true
    (s.CS.dram_wb <= cstore + dirty_footprint)

let test_cache_writeback_unit () =
  (* 1 KiB, 2-way, 64 B → 8 sets. Write a line, evict it with two more
     tags in the set: exactly one writeback with the victim's address. *)
  let l =
    CS.create_level ~name:"t" { M.size_kib = 1; assoc = 2; line_bytes = 64 }
  in
  ignore (CS.access_level ~rw:CS.Write l 0);
  ignore (CS.access_level l (8 * 64));
  ignore (CS.access_level l (16 * 64));
  Alcotest.(check int) "one dirty eviction" 1 l.CS.writebacks;
  Alcotest.(check int) "victim address" 0 l.CS.pending_wb;
  (* clean evictions don't write back *)
  ignore (CS.access_level l (24 * 64));
  Alcotest.(check int) "clean eviction is silent" 1 l.CS.writebacks

let () =
  Alcotest.run "sim"
    [
      ( "scoreboard",
        [
          Alcotest.test_case "matches closed form" `Quick test_scoreboard_matches_closed_form;
          Alcotest.test_case "8x12 exact" `Quick test_scoreboard_8x12_exact;
          Alcotest.test_case "latency bound" `Quick test_scoreboard_latency_bound;
          Alcotest.test_case "latency sensitivity" `Quick test_scoreboard_sensitive_to_latency;
          Alcotest.test_case "single pipe" `Quick test_scoreboard_single_pipe;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU behaviour" `Quick test_cache_lru_behaviour;
          Alcotest.test_case "line granularity" `Quick test_cache_within_line_hits;
          Alcotest.test_case "analytical beats none" `Quick test_cache_analytical_beats_none;
          Alcotest.test_case "kernel L1 residency" `Quick test_cache_kernel_l1_resident;
          Alcotest.test_case "determinism" `Quick test_cache_trace_deterministic;
          Alcotest.test_case "pinned 288³ counters" `Quick test_cache_pinned_counts;
          Alcotest.test_case "read/write split + writebacks" `Quick
            test_cache_rw_and_writebacks;
          Alcotest.test_case "writeback unit" `Quick test_cache_writeback_unit;
          QCheck_alcotest.to_alcotest test_run_vs_element_qcheck;
        ] );
      ( "trace",
        [
          Alcotest.test_case "Fig. 12 census" `Quick test_fig12_census;
          Alcotest.test_case "census scaling" `Quick test_census_scaling;
          Alcotest.test_case "row kernel census" `Quick test_census_row_kernel;
          Alcotest.test_case "scalar kernel census" `Quick test_census_scalar_kernel;
          Alcotest.test_case "f16 census" `Quick test_census_f16;
        ] );
      ( "model",
        [
          Alcotest.test_case "peak bound" `Quick test_peak_bound;
          Alcotest.test_case "8x12 near peak" `Quick test_8x12_near_peak;
          Alcotest.test_case "latency bound" `Quick test_latency_bound_narrow_kernels;
          Alcotest.test_case "kc monotone" `Quick test_kc_monotone;
          Alcotest.test_case "Fig. 13 orderings" `Quick test_fig13_orderings;
          Alcotest.test_case "edge utilization" `Quick test_edge_utilization_factor;
          Alcotest.test_case "misuse rejected" `Quick test_specialized_misuse_rejected;
          Alcotest.test_case "spill model" `Quick test_spill_model;
          Alcotest.test_case "f16 peak" `Quick test_f16_doubles_peak;
          Alcotest.test_case "fringe copy scales with dbytes" `Quick
            test_fringe_copy_scales_with_dbytes;
        ] );
    ]
