(* The domain-parallel sweep engine: Exo_par.Pool and Exo_par.Memo.

   The contract under test is the one every sweep in the repo leans on:
   for a pure function the pool's output is the input-ordered List.map
   result at EVERY width (so `--jobs N` can never change an outcome), a
   raising item re-raises deterministically, and the memo table hands every
   racing domain the same (physically equal) value. *)

module Pool = Exo_par.Pool
module Memo = Exo_par.Memo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Pool ---------------------------------------------------------------- *)

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      check_bool
        (Fmt.str "map at %d domains = List.map" jobs)
        true
        (Pool.map pool f xs = expect))
    [ 1; 2; 3; 8 ]

let test_map_array_matches () =
  let xs = Array.init 64 (fun i -> i) in
  let expect = Array.map succ xs in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      check_bool
        (Fmt.str "map_array at %d domains" jobs)
        true
        (Pool.map_array pool succ xs = expect))
    [ 1; 4 ]

let test_edge_inputs () =
  let pool = Pool.create ~jobs:4 () in
  check_bool "empty list" true (Pool.map pool succ [] = []);
  check_bool "single item" true (Pool.map pool succ [ 41 ] = [ 42 ]);
  check_int "width clamped to >= 1" 1 (Pool.jobs (Pool.create ~jobs:0 ()))

let test_iter_covers_every_index () =
  let n = 200 in
  let slots = Array.make n 0 in
  let pool = Pool.create ~jobs:3 () in
  (* index-addressed writes: each item owns its slot, so the unordered
     iter is still racefree and must touch every slot exactly once *)
  Pool.iter pool (fun i -> slots.(i) <- slots.(i) + 1) (List.init n (fun i -> i));
  check_bool "every slot written once" true (Array.for_all (( = ) 1) slots)

let test_exception_deterministic () =
  let f x = if x mod 7 = 3 then failwith (Fmt.str "boom %d" x) else x in
  let xs = List.init 50 (fun i -> i) in
  (* the lowest-indexed failing item (x = 3) wins at every width *)
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      match Pool.map pool f xs with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string)
            (Fmt.str "lowest failing item at %d domains" jobs)
            "boom 3" msg)
    [ 1; 2; 8 ]

let test_default_jobs_override () =
  let before = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs before)
    (fun () ->
      Pool.set_default_jobs 3;
      check_int "set_default_jobs sticks" 3 (Pool.default_jobs ());
      check_int "global pool follows" 3 (Pool.jobs (Pool.global ()));
      check_int "create () follows" 3 (Pool.jobs (Pool.create ())))

(* --- Memo ---------------------------------------------------------------- *)

let test_memo_caches () =
  let m : (int, int ref) Memo.t = Memo.create () in
  let computes = ref 0 in
  let get () =
    Memo.find_or_add m 17 (fun () ->
        incr computes;
        ref 99)
  in
  let a = get () in
  let b = get () in
  check_bool "repeated lookups physically equal" true (a == b);
  check_int "compute ran once" 1 !computes;
  check_bool "mem" true (Memo.mem m 17);
  check_bool "find_opt" true (Memo.find_opt m 17 = Some a);
  check_int "length" 1 (Memo.length m);
  Memo.clear m;
  check_bool "cleared" false (Memo.mem m 17)

let test_memo_first_writer_wins () =
  (* racing domains hammering one key must all get the same boxed value —
     physical equality is the observable of the first-writer-wins rule *)
  let m : (string, int ref) Memo.t = Memo.create () in
  let pool = Pool.create ~jobs:4 () in
  let results =
    Pool.map pool (fun i -> Memo.find_or_add m "key" (fun () -> ref i))
      (List.init 32 (fun i -> i))
  in
  let first = List.hd results in
  check_bool "every domain sees one value" true
    (List.for_all (fun r -> r == first) results);
  check_int "table holds one entry" 1 (Memo.length m)

let test_memo_distinct_keys_parallel () =
  let m : (int, int) Memo.t = Memo.create () in
  let pool = Pool.create ~jobs:4 () in
  let xs = List.init 100 (fun i -> i) in
  let r = Pool.map pool (fun i -> Memo.find_or_add m i (fun () -> i * i)) xs in
  check_bool "values correct" true (r = List.map (fun i -> i * i) xs);
  check_int "one entry per key" 100 (Memo.length m)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map at every width" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "map_array" `Quick test_map_array_matches;
          Alcotest.test_case "edge inputs" `Quick test_edge_inputs;
          Alcotest.test_case "iter covers every index" `Quick
            test_iter_covers_every_index;
          Alcotest.test_case "deterministic exception" `Quick
            test_exception_deterministic;
          Alcotest.test_case "default width override" `Quick
            test_default_jobs_override;
        ] );
      ( "memo",
        [
          Alcotest.test_case "caches and clears" `Quick test_memo_caches;
          Alcotest.test_case "first writer wins under race" `Quick
            test_memo_first_writer_wins;
          Alcotest.test_case "distinct keys in parallel" `Quick
            test_memo_distinct_keys_parallel;
        ] );
    ]
