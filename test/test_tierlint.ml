(* Static translation validation of the lowered execution tiers
   (Exo_check.Tierlint + Lint.run_tiers + the Registry integration):

   - every monomorphized table entry of every kit proves all three
     properties (bounds, write-set containment, accumulation shape), and
     the static verdict agrees with the dynamic integer certification
   - the sweep outcome is pool-width invariant
   - the registry's tables are built fully certified (t_proved) and count
     verdicts; reset_dispatch_counts zeroes the dispatch counters
   - deliberately broken lowerings (corrupted access summaries) are
     rejected, per property
   - qcheck oracle: the statically enumerated C write-set equals the
     dynamically observed changed-cell set of the closure engine *)

module C = Exo_interp.Compile
module S = C.Summary
module T = Exo_check.Tierlint
module L = Exo_ukr_gen.Lint
module Kits = Exo_ukr_gen.Kits
module Family = Exo_ukr_gen.Family
module R = Exo_blis.Registry
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module Ir = Exo_ir.Ir

let summary_of ~kit ~mr ~nr =
  let proc = (R.exo_kernel ~kit ~mr ~nr ()).Family.proc in
  match C.summarize_ukr proc with
  | Some s -> s
  | None -> Alcotest.failf "summarize_ukr refused %s %dx%d" kit.Kits.name mr nr

(* --- the full sweep: 96 entries per kit, all proved, probe agreement --- *)

let test_run_tiers_all_kits () =
  let o = L.run_tiers () in
  Alcotest.(check int) "6 kits swept" 6 (List.length o.L.tier_kits);
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Fmt.str "%s: 96 entries" k.L.tk_kit)
        96 k.L.tk_total;
      Alcotest.(check int)
        (Fmt.str "%s: proved 96/96" k.L.tk_kit)
        96 k.L.tk_proved;
      Alcotest.(check int)
        (Fmt.str "%s: no static/dynamic disagreement" k.L.tk_kit)
        0 k.L.tk_disagreements)
    o.L.tier_kits;
  Alcotest.(check bool) "tiers_ok" true (L.tiers_ok o);
  Alcotest.(check int) "tiers_unproved 0" 0 (L.tiers_unproved o);
  (* every f32 entry was probed and accepted; non-f32 entries are not
     probed (the probe buffers are f32) *)
  List.iter
    (fun (e : L.tier_entry) ->
      let kit = Option.get (Kits.by_name e.L.te_kit) in
      let expected =
        if kit.Kits.dt = Exo_ir.Dtype.F32 then Some true else None
      in
      if e.L.te_probe <> expected then
        Alcotest.failf "%s %dx%d: unexpected probe verdict" e.L.te_kit
          e.L.te_mr e.L.te_nr)
    o.L.tier_entries

let test_run_tiers_jobs_invariant () =
  let o1 = L.run_tiers ~kits:[ Kits.neon_f32 ] ~jobs:1 ~mr:3 ~nr:4 () in
  let o3 = L.run_tiers ~kits:[ Kits.neon_f32 ] ~jobs:3 ~mr:3 ~nr:4 () in
  Alcotest.(check bool) "identical outcome at widths 1 and 3" true (o1 = o3);
  Alcotest.(check int) "12 entries" 12 (List.length o1.L.tier_entries)

let test_tiers_json_shape () =
  let o = L.run_tiers ~kits:[ Kits.neon_f32 ] ~jobs:1 ~mr:2 ~nr:2 () in
  let j = L.tiers_json o in
  List.iter
    (fun needle ->
      let ok =
        let nl = String.length needle and jl = String.length j in
        let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
        go 0
      in
      if not ok then Alcotest.failf "tiers_json missing %S" needle)
    [
      "\"kit\": \"neon-f32\"";
      "\"unproved_entries\": 0";
      "\"probe_disagreements\": 0";
      "\"bounds\": \"proved\"";
      "\"accshape\": \"proved\"";
      "\"all_proved\": true";
    ]

(* --- registry integration: certified tables and counter resets ---------- *)

let test_registry_table_proved () =
  let table = R.exo_table ~mr:8 ~nr:12 () in
  Alcotest.(check int) "96 verdicts" 96 (Array.length table.R.t_proved);
  Alcotest.(check bool)
    "every entry statically certified" true
    (Array.for_all Fun.id table.R.t_proved);
  let proved, unproved = R.tier_verdict_counts () in
  Alcotest.(check bool) "proved counter advanced" true (proved >= 96);
  Alcotest.(check int) "unproved counter still zero" 0 unproved

let test_reset_dispatch_counts () =
  let table = R.exo_table ~mr:8 ~nr:12 () in
  let u = R.table_entry table ~mr:3 ~nr:5 in
  let ba n =
    Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout (max 1 n)
  in
  let ac = ba (2 * 3) and bc = ba (2 * 5) and c = ba (5 * 3) in
  Bigarray.Array1.fill ac 1.0;
  Bigarray.Array1.fill bc 1.0;
  Bigarray.Array1.fill c 0.0;
  u ~kc:2 ~ac ~ao:0 ~bc ~bo:0 ~c ~co:0;
  let fast, _ = R.ukr_dispatch_counts () in
  Alcotest.(check bool) "a dispatch was counted" true (fast >= 1);
  R.reset_dispatch_counts ();
  Alcotest.(check (pair int int))
    "reset_dispatch_counts zeroes both" (0, 0)
    (R.ukr_dispatch_counts ());
  (* the historical alias is the same operation *)
  u ~kc:2 ~ac ~ao:0 ~bc ~bo:0 ~c ~co:0;
  R.reset_ukr_dispatch_counts ();
  Alcotest.(check (pair int int))
    "alias zeroes both" (0, 0)
    (R.ukr_dispatch_counts ())

(* --- negative tests: corrupted lowerings are rejected per property ------ *)

let map_ops f (s : S.t) =
  {
    s with
    S.segs =
      List.map
        (fun (g : S.seg) -> { g with S.ops = List.map (f ~in_loop:g.S.in_loop) g.S.ops })
        s.S.segs;
  }

let rec map_rhs f (r : S.rhs) =
  match f r with
  | Some r' -> r'
  | None -> (
      match r with
      | S.Bin (b, x, y) -> S.Bin (b, map_rhs f x, map_rhs f y)
      | S.Neg x -> S.Neg (map_rhs f x)
      | (S.Const _ | S.Read _) as r -> r)

let test_reject_write_outside_c () =
  (* redirect one C store into the A panel: the write-set proof (the race-
     freedom/aliasing property) must fail *)
  let s = summary_of ~kit:Kits.neon_f32 ~mr:8 ~nr:12 in
  let redirected = ref false in
  let s' =
    map_ops
      (fun ~in_loop:_ (o : S.op) ->
        if (not !redirected) && o.S.dst.S.sp = S.C then begin
          redirected := true;
          { o with S.dst = { o.S.dst with S.sp = S.A } }
        end
        else o)
      s
  in
  Alcotest.(check bool) "a C store was redirected" true !redirected;
  let r = T.check s' in
  Alcotest.(check bool) "writes rejected" false (T.ok r.T.r_writes);
  (* the original, uncorrupted summary still proves *)
  Alcotest.(check bool) "original proves" true (T.proved (T.check s))

let test_reject_out_of_bounds_read () =
  (* shift every A read one row-block past the panel: base + mr + mr·k
     reaches kc·mr, outside the hoisted range check's contract *)
  let s = summary_of ~kit:Kits.neon_f32 ~mr:8 ~nr:12 in
  let s' =
    map_ops
      (fun ~in_loop:_ (o : S.op) ->
        {
          o with
          S.rhs =
            map_rhs
              (function
                | S.Read op when op.S.sp = S.A ->
                    Some (S.Read { op with S.base = op.S.base + s.S.mr })
                | _ -> None)
              o.S.rhs;
        })
      s
  in
  let r = T.check s' in
  Alcotest.(check bool) "bounds rejected" false (T.ok r.T.r_bounds)

let test_reject_wrong_accumulation () =
  (* turn the innermost multiply into an add: the tape no longer computes
     Σ A·B per C element *)
  let s = summary_of ~kit:Kits.neon_f32 ~mr:8 ~nr:12 in
  let s' =
    map_ops
      (fun ~in_loop:_ (o : S.op) ->
        {
          o with
          S.rhs =
            map_rhs
              (function
                | S.Bin (Ir.Mul, x, y) -> Some (S.Bin (Ir.Add, x, y))
                | _ -> None)
              o.S.rhs;
        })
      s
  in
  let r = T.check s' in
  Alcotest.(check bool) "accshape rejected" false (T.ok r.T.r_accshape)

let test_reject_kc_pos_contract () =
  (* a tape that presumes kc >= 1 cannot claim the kc = 0 table contract *)
  let s = summary_of ~kit:Kits.neon_f32 ~mr:4 ~nr:4 in
  let r = T.check { s with S.kc_pos = true } in
  Alcotest.(check bool) "kc_pos rejected" false (T.proved r)

(* --- qcheck oracle: static C write-set = dynamic touched-cell set ------- *)

let view data dims offset =
  let dims = Array.of_list dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { B.data; dtype = Exo_ir.Dtype.F32; dims; strides; offset }

(* Run the closure engine on strictly positive integer A/B panels: every C
   cell accumulating at least one A·B product strictly increases, so the
   changed-cell set observes exactly the cells the tape touches. *)
let dynamic_touched ~mr ~nr ~kc ~seed =
  let proc = (R.exo_kernel ~kit:Kits.neon_f32 ~mr ~nr ()).Family.proc in
  let ck = C.compile proc in
  let st = Random.State.make [| seed; mr; nr; kc |] in
  let pos n = Array.init (max 1 n) (fun _ -> float_of_int (1 + Random.State.int st 5)) in
  let ac = pos (kc * mr) and bc = pos (kc * nr) in
  let c = Array.init (nr * mr) (fun _ -> float_of_int (Random.State.int st 9 - 4)) in
  let c0 = Array.copy c in
  let one = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |] in
  C.run ck
    [
      I.VInt kc;
      I.VBuf one;
      I.VBuf (view ac [ kc; mr ] 0);
      I.VBuf (view bc [ kc; nr ] 0);
      I.VBuf one;
      I.VBuf (view c [ nr; mr ] 0);
    ];
  let touched = ref [] in
  for i = Array.length c - 1 downto 0 do
    if not (Int64.equal (Int64.bits_of_float c.(i)) (Int64.bits_of_float c0.(i)))
    then touched := i :: !touched
  done;
  !touched

let prop_write_set_oracle =
  QCheck2.Test.make ~name:"static C write-set = dynamic touched set" ~count:25
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 12) (int_range 0 6))
    (fun (mr, nr, kc) ->
      let s = summary_of ~kit:Kits.neon_f32 ~mr ~nr in
      let static = T.c_write_indices s ~kc in
      let dynamic = dynamic_touched ~mr ~nr ~kc ~seed:((mr * 131) + (nr * 17) + kc) in
      if kc = 0 then
        (* zero-depth call: C must be bit-unchanged, whatever stores the
           tape performs (they rewrite the original values) *)
        dynamic = []
      else static = dynamic)

let () =
  Alcotest.run "tierlint"
    [
      ( "sweep",
        [
          Alcotest.test_case "all kits, 96/96 proved, probes agree" `Quick
            test_run_tiers_all_kits;
          Alcotest.test_case "pool-width invariant" `Quick
            test_run_tiers_jobs_invariant;
          Alcotest.test_case "verdict JSON shape" `Quick test_tiers_json_shape;
        ] );
      ( "registry",
        [
          Alcotest.test_case "table fully certified" `Quick
            test_registry_table_proved;
          Alcotest.test_case "reset_dispatch_counts" `Quick
            test_reset_dispatch_counts;
        ] );
      ( "negative",
        [
          Alcotest.test_case "write outside C rejected" `Quick
            test_reject_write_outside_c;
          Alcotest.test_case "out-of-bounds read rejected" `Quick
            test_reject_out_of_bounds_read;
          Alcotest.test_case "wrong accumulation rejected" `Quick
            test_reject_wrong_accumulation;
          Alcotest.test_case "kc-positive contract rejected" `Quick
            test_reject_kc_pos_contract;
        ] );
      ( "oracle",
        [ QCheck_alcotest.to_alcotest prop_write_set_oracle ] );
    ]
