(* BLIS substrate: analytical blocking, packing, the five-loop macro-kernel
   (numerically, against naive GEMM), and the full-GEMM performance model's
   paper-shape properties. *)

module A = Exo_blis.Analytical
module M = Exo_blis.Matrix
module P = Exo_blis.Packing
module G = Exo_blis.Gemm
module D = Exo_blis.Driver
module R = Exo_blis.Registry
module Mach = Exo_isa.Machine

(* --- analytical model --------------------------------------------------- *)

let test_kc_512_on_carmel () =
  (* the paper: "we have set the Kc to 512, which is the value of BLIS
     packing for this ARM architecture" — the model must derive it *)
  let b = A.compute Mach.carmel ~mr:8 ~nr:12 ~dtype_bytes:4 in
  Alcotest.(check int) "kc = 512" 512 b.A.kc

let test_blocking_fits_caches () =
  List.iter
    (fun (mr, nr) ->
      let b = A.compute Mach.carmel ~mr ~nr ~dtype_bytes:4 in
      Alcotest.(check bool)
        (Fmt.str "%dx%d blocking fits" mr nr)
        true
        (A.fits Mach.carmel ~mr ~nr ~dtype_bytes:4 b))
    [ (8, 12); (8, 8); (8, 4); (4, 12); (4, 4); (16, 4) ]

let test_blocking_multiples () =
  let b = A.compute Mach.carmel ~mr:8 ~nr:12 ~dtype_bytes:4 in
  Alcotest.(check int) "mc multiple of mr" 0 (b.A.mc mod 8);
  Alcotest.(check int) "nc multiple of nr" 0 (b.A.nc mod 12)

let test_blocking_f16 () =
  (* halving the element size doubles kc *)
  let b32 = A.compute Mach.carmel ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let b16 = A.compute Mach.carmel ~mr:8 ~nr:12 ~dtype_bytes:2 in
  Alcotest.(check int) "f16 kc doubles" (2 * b32.A.kc) b16.A.kc

(* --- packing ------------------------------------------------------------ *)

let test_pack_a_layout () =
  let a = M.init 10 6 (fun i j -> float_of_int ((100 * i) + j)) in
  let p = P.pack_a a ~ic:2 ~pc:1 ~mcb:8 ~kcb:4 ~mr:4 in
  Alcotest.(check int) "two panels" 2 p.P.num_panels;
  Alcotest.(check int) "panel width" 4 (P.panel_width p 0);
  (* panel 0, k-major: element (kk=0, i=0) is A[2,1] *)
  Alcotest.(check (float 0.0)) "k-major origin" 201.0 p.P.data.(P.panel_off p 0);
  (* (kk=1, i=2) of panel 1 is A[2+4+2, 1+1] *)
  Alcotest.(check (float 0.0)) "panel 1 interior" 802.0
    p.P.data.(P.panel_off p 1 + (1 * 4) + 2)

let test_pack_a_edge_panel () =
  let a = M.init 10 6 (fun i j -> float_of_int ((100 * i) + j)) in
  let p = P.pack_a a ~ic:0 ~pc:0 ~mcb:10 ~kcb:3 ~mr:4 in
  Alcotest.(check int) "three panels" 3 p.P.num_panels;
  Alcotest.(check int) "last panel is the 2-row fringe" 2 (P.panel_width p 2)

let test_pack_b_alpha () =
  let b = M.init 4 8 (fun i j -> float_of_int (i + j)) in
  let p = P.pack_b ~alpha:2.0 b ~pc:0 ~jc:0 ~kcb:4 ~ncb:8 ~nr:4 in
  Alcotest.(check (float 0.0)) "alpha applied" (2.0 *. 5.0)
    p.P.data.(P.panel_off p 1 + 1)

let test_pack_bounds () =
  let a = M.init 4 4 (fun _ _ -> 0.0) in
  Alcotest.(check bool) "out-of-range block rejected" true
    (try
       ignore (P.pack_a a ~ic:2 ~pc:0 ~mcb:4 ~kcb:4 ~mr:4);
       false
     with Invalid_argument _ -> true)

(* --- macro-kernel numerics ---------------------------------------------- *)

let small_blocking = { A.mc = 16; kc = 8; nc = 24 }

let test_blis_exact_vs_naive () =
  let st = Random.State.make [| 1 |] in
  List.iter
    (fun (m, n, k) ->
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:G.reference_ukr a b c2;
      Alcotest.(check bool) (Fmt.str "%dx%dx%d exact" m n k) true (M.equal c1 c2))
    [ (8, 12, 8); (16, 24, 16); (17, 25, 9); (1, 1, 1); (40, 36, 33); (5, 7, 31) ]

let test_blis_with_exo_kernels () =
  let st = Random.State.make [| 2 |] in
  let m, n, k = (29, 31, 17) in
  let a = M.random_int m k st and b = M.random_int k n st in
  let c1 = M.random_int m n st in
  let c2 = M.copy c1 in
  G.naive_f32 a b c1;
  G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:(R.exo_ukr ()) a b c2;
  Alcotest.(check bool) "compiled Exo kernels drive the macro-kernel" true
    (M.equal c1 c2)

let test_blis_compiled_vs_interpreted_ukr () =
  (* the compiled engine behind exo_ukr against the tree-walking oracle,
     through the full macro-kernel: bit-identical C *)
  let st = Random.State.make [| 4 |] in
  let m, n, k = (19, 23, 13) in
  let a = M.random_int m k st and b = M.random_int k n st in
  let c1 = M.random_int m n st in
  let c2 = M.copy c1 in
  G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:(R.exo_ukr ()) a b c1;
  G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:(R.exo_ukr_interp ()) a b c2;
  Alcotest.(check bool) "compiled ≡ interpreted through the macro-kernel" true
    (M.equal c1 c2)

let test_blis_alpha_beta () =
  let st = Random.State.make [| 3 |] in
  let m, n, k = (13, 11, 7) in
  let a = M.random_int m k st and b = M.random_int k n st in
  let c1 = M.random_int m n st in
  let c2 = M.copy c1 in
  G.naive_f32 ~alpha:2.0 ~beta:(-1.0) a b c1;
  G.blis ~alpha:2.0 ~beta:(-1.0) ~blocking:small_blocking ~mr:8 ~nr:12
    ~ukr:G.reference_ukr a b c2;
  Alcotest.(check bool) "alpha/beta handled" true (M.equal c1 c2)

(* fringe-heavy DL shapes: m and n deliberately not multiples of mr/nr, so
   every jc/ic block ends in fringe panels driven by specialized kernels *)
let fringe_shapes = [ (49, 50, 16); (23, 100, 7); (50, 13, 21); (49, 31, 33) ]

let test_blis_exo_fringe_heavy () =
  let st = Random.State.make [| 7 |] in
  let ukr = R.exo_ukr () in
  List.iter
    (fun (m, n, k) ->
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr a b c2;
      Alcotest.(check bool)
        (Fmt.str "%dx%dx%d fringe-heavy exact" m n k)
        true (M.equal c1 c2))
    fringe_shapes

let test_blis_pool_width_invariance () =
  (* the jc loop fans out over disjoint C column blocks: the result is
     bit-identical no matter how many domains execute it *)
  let st = Random.State.make [| 11 |] in
  let m, n, k = (49, 100, 33) in
  let a = M.random_int m k st and b = M.random_int k n st in
  let c0 = M.random_int m n st in
  let ukr = R.exo_ukr () in
  let run jobs =
    let c = M.copy c0 in
    let pool = Exo_par.Pool.create ~jobs () in
    G.blis ~alpha:2.0 ~beta:(-1.0) ~pool ~ws:(G.workspace ())
      ~blocking:{ A.mc = 16; kc = 8; nc = 12 } ~mr:8 ~nr:12 ~ukr a b c;
    c
  in
  let c1 = run 1 and c2 = run 2 and c4 = run 4 in
  Alcotest.(check bool) "jobs 1 ≡ jobs 2 (bit-exact)" true (M.equal c1 c2);
  Alcotest.(check bool) "jobs 1 ≡ jobs 4 (bit-exact)" true (M.equal c1 c4)

let test_blis_workspace_reuse () =
  (* repeated GEMMs through one workspace reuse the same arenas and stay
     correct — the steady-state zero-allocation path *)
  let st = Random.State.make [| 13 |] in
  let ws = G.workspace () in
  let ukr = R.exo_ukr () in
  List.iter
    (fun (m, n, k) ->
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~ws ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr a b c2;
      Alcotest.(check bool) (Fmt.str "%dx%dx%d via shared ws" m n k) true
        (M.equal c1 c2))
    [ (40, 36, 33); (5, 7, 31); (49, 50, 16); (16, 24, 16) ]

let test_gemm_batch () =
  (* a workload list through one arena + pool matches per-problem naive *)
  let st = Random.State.make [| 17 |] in
  let mk (m, n, k) =
    let a = M.random_int m k st and b = M.random_int k n st in
    let c = M.random_int m n st in
    (a, b, M.copy c, c)
  in
  let probs = List.map mk [ (49, 50, 16); (16, 24, 16); (5, 7, 31) ] in
  List.iter (fun (a, b, _, c_ref) -> G.naive_f32 ~beta:0.5 a b c_ref) probs;
  let ps =
    List.map
      (fun (a, b, c, _) ->
        {
          G.p_a = a;
          p_b = b;
          p_c = c;
          p_alpha = 1.0;
          p_beta = 0.5;
          p_blocking = small_blocking;
          p_mr = 8;
          p_nr = 12;
        })
      probs
  in
  G.batch ~ws:(G.workspace ()) ~ukr:(R.exo_ukr ()) ps;
  List.iter
    (fun (_, _, c, c_ref) ->
      Alcotest.(check bool) "batch layer exact" true (M.equal c c_ref))
    probs

(* --- monomorphized Bigarray tier ----------------------------------------- *)

module K = Exo_ukr_gen.Kits

let test_table_complete_all_families () =
  (* the generated dispatch table covers every (mr', nr') pair; on the f32
     kits every entry is a certified monomorphized executor (zero holes) *)
  List.iter
    (fun kit ->
      let t = R.exo_table ~kit ~mr:8 ~nr:12 () in
      Alcotest.(check int)
        (Fmt.str "%s: 96 entries" kit.K.name)
        96
        (Array.length t.R.t_entries);
      let holes = R.table_holes t in
      if kit.K.dt = Exo_ir.Dtype.F32 then (
        Alcotest.(check bool)
          (Fmt.str "%s: complete" kit.K.name)
          true (R.table_complete t);
        Alcotest.(check int) (Fmt.str "%s: no holes" kit.K.name) 0 holes)
      else
        Alcotest.(check int)
          (Fmt.str "%s: all closure round-trips" kit.K.name)
          96 holes)
    K.all

let test_table_dispatch_is_array_indexing () =
  (* dispatch is O(1): table_entry is the flat-array element at
     (mr'-1)·nr + nr'-1, and repeated table builds hit the per-domain memo *)
  let t = R.exo_table ~mr:8 ~nr:12 () in
  for mr' = 1 to 8 do
    for nr' = 1 to 12 do
      let by_index = t.R.t_entries.(((mr' - 1) * 12) + nr' - 1) in
      Alcotest.(check bool)
        (Fmt.str "entry (%d,%d) is the indexed slot" mr' nr')
        true
        (R.table_entry t ~mr:mr' ~nr:nr' == by_index)
    done
  done;
  Alcotest.(check bool) "table memoized process-wide" true
    (R.exo_table ~mr:8 ~nr:12 () == t);
  (* one immutable table for the whole process: every domain of every pool
     width resolves the same physical table (no per-domain rebuilds) *)
  List.iter
    (fun jobs ->
      let pool = Exo_par.Pool.create ~jobs () in
      List.iter
        (fun t' ->
          Alcotest.(check bool)
            (Fmt.str "width %d: physically the shared table" jobs)
            true (t' == t))
        (Exo_par.Pool.map pool
           (fun _ -> R.exo_table ~mr:8 ~nr:12 ())
           [ 0; 1; 2; 3 ]))
    [ 1; 2; 4 ];
  Alcotest.check_raises "shape outside the table"
    (Invalid_argument "Registry.table_entry: shape outside the table")
    (fun () ->
      let _e : G.ukr_ba = R.table_entry t ~mr:9 ~nr:1 in
      ());
  Alcotest.check_raises "nr outside the table"
    (Invalid_argument "Registry.table_entry: shape outside the table")
    (fun () ->
      let _e : G.ukr_ba = R.table_entry t ~mr:1 ~nr:13 in
      ())

let test_blis_ba_exact_and_counters () =
  (* the Bigarray tier matches naive_f32 on fringe-heavy shapes and never
     touches the closure fallback on an f32 family *)
  let st = Random.State.make [| 19 |] in
  let kernels = R.exo_bank ~mr:8 ~nr:12 () in
  R.reset_ukr_dispatch_counts ();
  List.iter
    (fun (m, n, k) ->
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 ~alpha:2.0 ~beta:(-1.0) a b c1;
      G.blis_ba ~alpha:2.0 ~beta:(-1.0) ~blocking:small_blocking ~mr:8 ~nr:12
        ~kernels a b c2;
      Alcotest.(check bool)
        (Fmt.str "%dx%dx%d bigarray tier exact" m n k)
        true (M.equal c1 c2))
    ((1, 1, 1) :: (7, 11, 3) :: (5, 7, 0) :: fringe_shapes);
  let fast, fallback = R.ukr_dispatch_counts () in
  Alcotest.(check bool) "monomorphized entries fired" true (fast > 0);
  Alcotest.(check int) "no closure fallbacks on an f32 family" 0 fallback

let test_blis_ba_pool_width_invariance () =
  (* the (jc × ic) task grid: a small-n shape where the jc-only split
     yields one task still fans out over ic, bit-identical at every width *)
  let st = Random.State.make [| 29 |] in
  let m, n, k = (61, 12, 17) in
  let a = M.random_int m k st and b = M.random_int k n st in
  let c0 = M.random_int m n st in
  let kernels = R.exo_bank ~mr:8 ~nr:12 () in
  let run jobs =
    let c = M.copy c0 in
    let pool = Exo_par.Pool.create ~jobs () in
    G.blis_ba ~alpha:2.0 ~beta:(-1.0) ~pool ~ws:(G.workspace ())
      ~blocking:small_blocking ~mr:8 ~nr:12 ~kernels a b c;
    c
  in
  let c_ref = M.copy c0 in
  G.naive_f32 ~alpha:2.0 ~beta:(-1.0) a b c_ref;
  let c1 = run 1 and c2 = run 2 and c4 = run 4 in
  Alcotest.(check bool) "width 1 exact vs naive" true (M.equal c_ref c1);
  Alcotest.(check bool) "jobs 1 ≡ jobs 2 (bit-exact)" true (M.equal c1 c2);
  Alcotest.(check bool) "jobs 1 ≡ jobs 4 (bit-exact)" true (M.equal c1 c4)

let test_gemm_batch_ba () =
  (* the workload batch through the Bigarray tier matches per-problem naive *)
  let st = Random.State.make [| 31 |] in
  let mk (m, n, k) =
    let a = M.random_int m k st and b = M.random_int k n st in
    let c = M.random_int m n st in
    (a, b, M.copy c, c)
  in
  let probs = List.map mk [ (49, 50, 16); (16, 24, 16); (5, 7, 31) ] in
  List.iter (fun (a, b, _, c_ref) -> G.naive_f32 ~beta:0.5 a b c_ref) probs;
  let ps =
    List.map
      (fun (a, b, c, _) ->
        {
          G.p_a = a;
          p_b = b;
          p_c = c;
          p_alpha = 1.0;
          p_beta = 0.5;
          p_blocking = small_blocking;
          p_mr = 8;
          p_nr = 12;
        })
      probs
  in
  G.batch_ba ~ws:(G.workspace ()) ~kernels:(R.exo_bank ~mr:8 ~nr:12 ()) ps;
  List.iter
    (fun (_, _, c, c_ref) ->
      Alcotest.(check bool) "batch_ba layer exact" true (M.equal c c_ref))
    probs

let prop_blis_ba_cross_tier_all_kits =
  (* random shapes including m < mr, n < nr and k = 0, across every kit:
     the Bigarray tier, the flat-array tier and the closure engine agree
     bit for bit, and all match naive_f32 (integer data keeps every dtype
     exact: |Σ| ≤ 3·3·24 + 3 < 2^11, within f16's exact-integer range) *)
  QCheck2.Test.make
    ~name:"Bigarray tier ≡ flat tier ≡ closure engine ≡ naive (all kits)"
    ~count:8
    QCheck2.Gen.(triple (int_range 1 20) (int_range 1 30) (int_range 0 24))
    (fun (m, n, k) ->
      List.for_all
        (fun kit ->
          let st = Random.State.make [| m; n; k; 37 |] in
          let a = M.random_int m k st and b = M.random_int k n st in
          let c0 = M.random_int m n st in
          let c_naive = M.copy c0 in
          G.naive_f32 a b c_naive;
          let c_ba = M.copy c0 in
          G.blis_ba ~blocking:small_blocking ~mr:8 ~nr:12
            ~kernels:(R.exo_bank ~kit ~mr:8 ~nr:12 ())
            a b c_ba;
          let c_flat = M.copy c0 in
          G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:(R.exo_ukr ~kit ())
            a b c_flat;
          let c_closure = M.copy c0 in
          G.blis ~blocking:small_blocking ~mr:8 ~nr:12
            ~ukr:(R.exo_ukr_closure ~kit ()) a b c_closure;
          M.equal c_naive c_ba && M.equal c_ba c_flat
          && M.equal c_ba c_closure)
        K.all)

let prop_blis_exo_fringe_random =
  QCheck2.Test.make
    ~name:"blocked GEMM + specialized kernels ≡ naive (fringe-heavy sizes)"
    ~count:25
    QCheck2.Gen.(triple (int_range 1 60) (int_range 1 60) (int_range 1 40))
    (fun (m0, n0, k) ->
      (* skew away from tile multiples so fringes dominate *)
      let m = if m0 mod 8 = 0 then m0 + 1 else m0 in
      let n = if n0 mod 12 = 0 then n0 + 1 else n0 in
      let st = Random.State.make [| m; n; k; 23 |] in
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:(R.exo_ukr ()) a b c2;
      M.equal c1 c2)

let prop_blis_equals_naive =
  QCheck2.Test.make ~name:"blocked GEMM ≡ naive (random sizes)" ~count:30
    QCheck2.Gen.(triple (int_range 1 33) (int_range 1 29) (int_range 1 21))
    (fun (m, n, k) ->
      let st = Random.State.make [| m; n; k |] in
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~blocking:small_blocking ~mr:8 ~nr:12 ~ukr:G.reference_ukr a b c2;
      M.equal c1 c2)

let prop_blis_exo_random_blocking =
  QCheck2.Test.make ~name:"blocked GEMM ≡ naive under random blockings" ~count:15
    QCheck2.Gen.(
      quad (int_range 1 20) (int_range 1 20) (int_range 1 15) (int_range 1 4))
    (fun (m, n, k, f) ->
      let blocking = { A.mc = 8 * f; kc = 3 * f; nc = 12 * f } in
      let st = Random.State.make [| m; n; k; f |] in
      let a = M.random_int m k st and b = M.random_int k n st in
      let c1 = M.random_int m n st in
      let c2 = M.copy c1 in
      G.naive_f32 a b c1;
      G.blis ~blocking ~mr:8 ~nr:12 ~ukr:G.reference_ukr a b c2;
      M.equal c1 c2)

(* --- driver (performance model) ----------------------------------------- *)

let machine = Mach.carmel

let gflops setup m n k = D.gflops machine setup ~m ~n ~k

let test_fig14_blis_wins_squarish () =
  List.iter
    (fun sz ->
      let blis = gflops (D.blis_lib ()) sz sz sz in
      let alg_exo = gflops (D.alg_exo ()) sz sz sz in
      let alg_blis = gflops (D.alg_blis ()) sz sz sz in
      let alg_neon = gflops (D.alg_neon ()) sz sz sz in
      Alcotest.(check bool) (Fmt.str "BLIS best at %d" sz) true (blis >= alg_exo);
      Alcotest.(check bool) (Fmt.str "ALG+EXO > ALG+BLIS at %d" sz) true
        (alg_exo > alg_blis);
      Alcotest.(check bool) (Fmt.str "ALG+BLIS > ALG+NEON at %d" sz) true
        (alg_blis > alg_neon))
    [ 2000; 4000; 5000 ]

let test_fig14_sane_magnitudes () =
  let g = gflops (D.blis_lib ()) 4000 4000 4000 in
  Alcotest.(check bool) "squarish BLIS between 80% and 100% of peak" true
    (g > 0.8 *. Mach.peak_gflops machine Exo_ir.Dtype.F32
    && g <= Mach.peak_gflops machine Exo_ir.Dtype.F32)

let test_exo_wins_skinny_m () =
  (* the DL fringe case the paper motivates: m = 49 *)
  let exo = gflops (D.alg_exo ()) 49 2048 512 in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("ALG+EXO wins m=49 vs " ^ D.name_of s) true
        (exo > gflops s 49 2048 512))
    [ D.blis_lib (); D.alg_blis (); D.alg_neon () ]

let test_driver_positive_and_bounded () =
  List.iter
    (fun s ->
      let g = gflops s 784 128 512 in
      Alcotest.(check bool) (D.name_of s ^ " positive") true (g > 0.0);
      Alcotest.(check bool) (D.name_of s ^ " ≤ peak") true
        (g <= Mach.peak_gflops machine Exo_ir.Dtype.F32))
    (D.all_setups ())

let test_tuner_ranking () =
  let results = Exo_blis.Tuner.sweep machine ~m:784 ~n:512 ~k:256 in
  Alcotest.(check bool) "several candidates" true (List.length results >= 5);
  let sorted =
    List.for_all2
      (fun (a : Exo_blis.Tuner.result) b -> a.Exo_blis.Tuner.gflops >= b.Exo_blis.Tuner.gflops)
      (List.filteri (fun i _ -> i < List.length results - 1) results)
      (List.tl results)
  in
  Alcotest.(check bool) "sorted best first" true sorted

let test_tuner_best_at_least_family_choice () =
  (* exhaustive tuning can only match or beat the default family selection *)
  List.iter
    (fun (m, n, k) ->
      let tuned = (Exo_blis.Tuner.best machine ~m ~n ~k).Exo_blis.Tuner.gflops in
      let default = D.gflops machine (D.alg_exo ()) ~m ~n ~k in
      Alcotest.(check bool)
        (Fmt.str "(%d,%d,%d): tuned %.2f ≥ default %.2f" m n k tuned default)
        true
        (tuned >= default -. 1e-9))
    [ (2000, 2000, 2000); (49, 2048, 512); (3136, 64, 64) ]

let test_tuner_feasibility () =
  (* shapes that exceed the register file are rejected up front *)
  Alcotest.(check bool) "24x16 infeasible on 32 regs" false
    (Exo_blis.Tuner.feasible machine ~lanes:4 ~mr:24 ~nr:16);
  Alcotest.(check bool) "8x12 feasible" true
    (Exo_blis.Tuner.feasible machine ~lanes:4 ~mr:8 ~nr:12);
  Alcotest.(check bool) "odd mr infeasible" false
    (Exo_blis.Tuner.feasible machine ~lanes:4 ~mr:6 ~nr:8)

let test_tuner_memoized () =
  let a = Exo_blis.Tuner.sweep machine ~m:100 ~n:100 ~k:100 in
  let b = Exo_blis.Tuner.sweep machine ~m:100 ~n:100 ~k:100 in
  Alcotest.(check bool) "same list object (memoized)" true (a == b)

let test_tuner_shapes_not_conflated () =
  (* regression: the memo key must include the candidate-shape list — a
     custom [?shapes] sweep on a problem already swept with the defaults
     used to return the default-shapes ranking *)
  let m, n, k = (101, 103, 107) in
  let _ = Exo_blis.Tuner.sweep machine ~m ~n ~k in
  let custom = Exo_blis.Tuner.sweep ~shapes:[ (4, 4) ] machine ~m ~n ~k in
  Alcotest.(check int) "one candidate" 1 (List.length custom);
  let r = List.hd custom in
  Alcotest.(check int) "mr = 4" 4 r.Exo_blis.Tuner.mr;
  Alcotest.(check int) "nr = 4" 4 r.Exo_blis.Tuner.nr;
  (* and the default entry is still intact afterwards *)
  let again = Exo_blis.Tuner.sweep machine ~m ~n ~k in
  Alcotest.(check bool) "default entry preserved" true (List.length again > 1)

let test_tuner_key_no_name_aliasing () =
  (* regression: the memo key holds the machine and kit names as separate
     tuple fields. The old key concatenated them, so machine "colneon" with
     kit "-f32" aliased machine "col" with kit "neon-f32" and the second
     sweep stole the first one's ranking. *)
  let kit = Exo_ukr_gen.Kits.neon_f32 in
  Alcotest.(check string) "kit name" "neon-f32" kit.Exo_ukr_gen.Kits.name;
  let m1 = { machine with Exo_isa.Machine.name = "colneon" } in
  let k1 = { kit with Exo_ukr_gen.Kits.name = "-f32" } in
  let m2 = { machine with Exo_isa.Machine.name = "col" } in
  let m, n, k = (211, 223, 227) in
  let a = Exo_blis.Tuner.sweep ~kit:k1 m1 ~m ~n ~k in
  let b = Exo_blis.Tuner.sweep ~kit m2 ~m ~n ~k in
  Alcotest.(check bool) "distinct memo entries" false (a == b);
  (* and each configuration still hits its own entry *)
  Alcotest.(check bool) "entry 1 memoized" true
    (a == Exo_blis.Tuner.sweep ~kit:k1 m1 ~m ~n ~k);
  Alcotest.(check bool) "entry 2 memoized" true
    (b == Exo_blis.Tuner.sweep ~kit m2 ~m ~n ~k)

let test_tuner_jobs_identical () =
  (* the ranking is identical no matter how many domains price it *)
  let m, n, k = (311, 313, 317) in
  Exo_blis.Tuner.clear_cache ();
  let one = Exo_blis.Tuner.sweep ~jobs:1 machine ~m ~n ~k in
  Exo_blis.Tuner.clear_cache ();
  let four = Exo_blis.Tuner.sweep ~jobs:4 machine ~m ~n ~k in
  Alcotest.(check bool) "rankings identical at 1 vs 4 domains" true (one = four)

let test_driver_no_feasible_shape () =
  (* a machine whose register file fits no candidate shape must fail with a
     descriptive error, not a bare List.hd exception *)
  let tiny =
    {
      machine with
      Exo_isa.Machine.name = "tiny-regs";
      vec = { machine.Exo_isa.Machine.vec with Exo_isa.Memories.num_regs = 2 };
    }
  in
  match D.time tiny (D.alg_exo ()) ~m:96 ~n:96 ~k:96 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      let has_substr s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Fmt.str "message %S names the problem" msg)
        true
        (has_substr msg "no register-feasible" && has_substr msg "tiny-regs")

let test_driver_time_memoized () =
  let s = D.alg_exo () in
  let a = D.time machine s ~m:301 ~n:303 ~k:305 in
  let b = D.time machine s ~m:301 ~n:303 ~k:305 in
  Alcotest.(check bool) "same result object (memoized)" true (a == b);
  (* distinct setups must not collide on a key *)
  let c = D.time machine (D.blis_lib ()) ~m:301 ~n:303 ~k:305 in
  let d = D.time machine (D.alg_blis ()) ~m:301 ~n:303 ~k:305 in
  Alcotest.(check bool) "prefetch distinguishes setups" true (fst c <> fst d)

let test_driver_key_no_name_aliasing () =
  (* regression: the time memo key was a '/'-joined string, so machine
     "col/blis" with kernel "-asm" aliased machine "col" with kernel
     "blis/-asm" and the second configuration stole the first's cached
     timing. The key is now a structured tuple. *)
  let base = R.base_8x12 () in
  let impl = Exo_sim.Kernel_model.blis_asm_8x12 base in
  let m1 = { machine with Exo_isa.Machine.name = "col/blis" } in
  let s1 =
    D.Monolithic
      { impl = { impl with Exo_sim.Kernel_model.name = "-asm" }; prefetch = true }
  in
  let m2 = { machine with Exo_isa.Machine.name = "col" } in
  let s2 =
    D.Monolithic
      {
        impl = { impl with Exo_sim.Kernel_model.name = "blis/-asm" };
        prefetch = true;
      }
  in
  let m, n, k = (401, 403, 405) in
  let a = D.time m1 s1 ~m ~n ~k in
  let b = D.time m2 s2 ~m ~n ~k in
  Alcotest.(check bool) "distinct memo entries" false (a == b);
  (* and each configuration still hits its own entry *)
  Alcotest.(check bool) "entry 1 memoized" true (a == D.time m1 s1 ~m ~n ~k);
  Alcotest.(check bool) "entry 2 memoized" true (b == D.time m2 s2 ~m ~n ~k)

let test_f16_gemm_speedup () =
  (* the contributed f16 path roughly doubles end-to-end throughput *)
  let f16 = D.Exo_family Exo_ukr_gen.Kits.neon_f16 in
  let f32 = D.alg_exo () in
  List.iter
    (fun (m, n, k) ->
      let r =
        D.gflops Mach.carmel_fp16 f16 ~m ~n ~k /. D.gflops machine f32 ~m ~n ~k
      in
      Alcotest.(check bool)
        (Fmt.str "(%d,%d,%d): f16/f32 ratio %.2f in [1.5, 2.1]" m n k r)
        true
        (r >= 1.5 && r <= 2.1))
    [ (2000, 2000, 2000); (784, 512, 128) ]

let test_setup_names () =
  Alcotest.(check (list string)) "legend names"
    [ "ALG+NEON"; "ALG+BLIS"; "ALG+EXO"; "BLIS" ]
    (List.map D.name_of (D.all_setups ()))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_blis_equals_naive; prop_blis_exo_random_blocking;
        prop_blis_exo_fringe_random; prop_blis_ba_cross_tier_all_kits;
      ]
  in
  Alcotest.run "blis"
    [
      ( "analytical",
        [
          Alcotest.test_case "kc = 512 on Carmel" `Quick test_kc_512_on_carmel;
          Alcotest.test_case "fits caches" `Quick test_blocking_fits_caches;
          Alcotest.test_case "multiples" `Quick test_blocking_multiples;
          Alcotest.test_case "f16 doubles kc" `Quick test_blocking_f16;
        ] );
      ( "packing",
        [
          Alcotest.test_case "A layout" `Quick test_pack_a_layout;
          Alcotest.test_case "A edge panel" `Quick test_pack_a_edge_panel;
          Alcotest.test_case "B alpha" `Quick test_pack_b_alpha;
          Alcotest.test_case "bounds" `Quick test_pack_bounds;
        ] );
      ( "gemm",
        [
          Alcotest.test_case "exact vs naive" `Quick test_blis_exact_vs_naive;
          Alcotest.test_case "with Exo kernels" `Quick test_blis_with_exo_kernels;
          Alcotest.test_case "compiled vs interpreted ukr" `Quick
            test_blis_compiled_vs_interpreted_ukr;
          Alcotest.test_case "alpha/beta" `Quick test_blis_alpha_beta;
          Alcotest.test_case "fringe-heavy DL shapes" `Quick
            test_blis_exo_fringe_heavy;
          Alcotest.test_case "pool-width invariance" `Quick
            test_blis_pool_width_invariance;
          Alcotest.test_case "workspace reuse" `Quick test_blis_workspace_reuse;
          Alcotest.test_case "batch" `Quick test_gemm_batch;
          Alcotest.test_case "table complete (all families)" `Quick
            test_table_complete_all_families;
          Alcotest.test_case "table dispatch is array indexing" `Quick
            test_table_dispatch_is_array_indexing;
          Alcotest.test_case "bigarray tier exact + no fallbacks" `Quick
            test_blis_ba_exact_and_counters;
          Alcotest.test_case "bigarray tier (jc x ic) width invariance" `Quick
            test_blis_ba_pool_width_invariance;
          Alcotest.test_case "batch (bigarray tier)" `Quick test_gemm_batch_ba;
        ]
        @ props );
      ( "driver",
        [
          Alcotest.test_case "Fig. 14 orderings" `Quick test_fig14_blis_wins_squarish;
          Alcotest.test_case "Fig. 14 magnitudes" `Quick test_fig14_sane_magnitudes;
          Alcotest.test_case "skinny-m EXO win" `Quick test_exo_wins_skinny_m;
          Alcotest.test_case "positive and bounded" `Quick test_driver_positive_and_bounded;
          Alcotest.test_case "setup names" `Quick test_setup_names;
          Alcotest.test_case "tuner ranking" `Quick test_tuner_ranking;
          Alcotest.test_case "tuner beats default" `Quick test_tuner_best_at_least_family_choice;
          Alcotest.test_case "tuner feasibility" `Quick test_tuner_feasibility;
          Alcotest.test_case "tuner memoized" `Quick test_tuner_memoized;
          Alcotest.test_case "tuner shapes not conflated" `Quick
            test_tuner_shapes_not_conflated;
          Alcotest.test_case "tuner key no name aliasing" `Quick
            test_tuner_key_no_name_aliasing;
          Alcotest.test_case "tuner jobs identical" `Quick test_tuner_jobs_identical;
          Alcotest.test_case "driver no feasible shape" `Quick
            test_driver_no_feasible_shape;
          Alcotest.test_case "driver time memoized" `Quick test_driver_time_memoized;
          Alcotest.test_case "driver key no name aliasing" `Quick
            test_driver_key_no_name_aliasing;
          Alcotest.test_case "f16 gemm speedup" `Quick test_f16_gemm_speedup;
        ] );
    ]
