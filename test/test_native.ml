(* The native JIT execution tier: Exo_native.{Host,Jit} and the registry's
   table upgrade (Registry.native_info / t_native / table dispatch).

   The load-bearing contracts pinned here:

   1. Host probe — the capability census is well-formed and the env
      switches ([UKRGEN_NATIVE], [UKRGEN_CC]) mask the tier per process,
      re-read on every call (no rebuild needed to toggle).

   2. Differential correctness — on every f32 kit whose bank compiles on
      this host, the serving table (native where certified) is bit-exact
      against the Bigarray tier on random tiles, and a full fringe-laden
      GEMM agrees across all four execution paths: native bank, Bigarray
      bank, compiled-closure engine, and the binary32 naive reference.

   3. Cache robustness — a corrupted cached [.so] reads as a miss and is
      recompiled; the rebuilt table serves native code again and computes
      the same tiles.

   4. Graceful degradation — with the tier disabled or the compiler
      masked, the table still builds complete, serves the Bigarray tier
      (zero native dispatches), and the GEMM stays exact.

   Every case that needs a compiler skips (with a visible reason) on
   cc-less hosts rather than failing — the tier itself must degrade, so
   its tests must too. *)

module Store = Exo_cache.Store
module R = Exo_blis.Registry
module K = Exo_ukr_gen.Kits
module Host = Exo_native.Host
module Jit = Exo_native.Jit
module M = Exo_blis.Matrix
module G = Exo_blis.Gemm

let temp_dir () =
  let f = Filename.temp_file "exo-native-test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* ambient-store + registry-memo scope: every case builds its tables from
   scratch into its own store and leaves no memoized table behind (a table
   built under one env setting must not leak into the next case) *)
let with_fresh_tables f =
  let dir = temp_dir () in
  Store.set_ambient (Some dir);
  R.clear_memos_for_bench ();
  Fun.protect
    ~finally:(fun () ->
      Store.set_ambient None;
      R.clear_memos_for_bench ();
      rm_rf dir)
    (fun () -> f dir)

(* [Unix.putenv] cannot unset, so restoration writes the value the reader
   treats as "unset": [UKRGEN_NATIVE=1] (any non-off value) re-enables,
   [UKRGEN_CC=] (empty) falls back to the PATH search. *)
let with_env var value f =
  let restore = match Sys.getenv_opt var with Some v -> v
    | None -> if var = Host.env_native then "1" else ""
  in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var restore) (fun () -> f ())

let f32_kits = List.filter (fun k -> k.K.dt = Exo_ir.Dtype.F32) K.all

let skip reason = Printf.printf "      [skipped: %s]\n%!" reason

(* run one table entry on a deterministic random tile (same scheme as the
   registry's certification probes, different seeds) *)
let exec (u : Exo_interp.Compile.ukr_ba) ~mr ~nr ~kc ~seed =
  let st = Random.State.make [| mr; nr; kc; seed |] in
  let mk n =
    let b = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      Bigarray.Array1.set b i (float_of_int (Random.State.int st 7 - 3))
    done;
    b
  in
  let ac = mk (kc * mr) and bc = mk (kc * nr) in
  let c = mk (mr * nr) in
  u ~kc ~ac ~ao:0 ~bc ~bo:0 ~c ~co:0;
  Array.init (mr * nr) (Bigarray.Array1.get c)

(* --- host probe ---------------------------------------------------------- *)

let test_host_probe () =
  let d = Host.describe () in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "describe carries %s" k)
        true (List.mem_assoc k d))
    [ "native_tier"; "cc"; "cc_identity"; "isa"; "tuning_flags" ];
  let isas = Host.isas () in
  Alcotest.(check bool) "census has no duplicates" true
    (List.length (List.sort_uniq compare isas) = List.length isas);
  List.iter (fun i -> Alcotest.(check bool) "supports agrees with census"
      true (Host.supports i)) isas;
  (match Host.cc () with
  | None -> ()
  | Some p ->
      Alcotest.(check bool) "resolved cc is executable" true (Sys.file_exists p);
      Alcotest.(check bool) "cc identity is non-empty" true
        (String.length (Host.cc_identity ()) > 0));
  List.iter
    (fun fl ->
      Alcotest.(check bool) "tuning flags are -m options" true
        (String.length fl > 2 && String.sub fl 0 2 = "-m"))
    (Host.march_flags ())

let test_env_switches () =
  with_env Host.env_native "0" (fun () ->
      Alcotest.(check bool) "UKRGEN_NATIVE=0 disables" false (Host.enabled ());
      Alcotest.(check bool) "disabled tier resolves no cc" true
        (Host.cc () = None));
  Alcotest.(check bool) "re-enabled after scope" true (Host.enabled ());
  with_env Host.env_cc "/nonexistent/cc-for-test" (fun () ->
      Alcotest.(check bool) "UKRGEN_CC pointing nowhere masks cc" true
        (Host.cc () = None))

(* --- differential correctness -------------------------------------------- *)

let test_differential kit () =
  with_fresh_tables @@ fun _dir ->
  let mr, nr = (4, 6) in
  let t = R.exo_table ~kit ~mr ~nr () in
  let ni = t.R.t_native_info in
  if ni.R.ni_entries = 0 then
    skip (Fmt.str "native tier unavailable (%s)" ni.R.ni_reason)
  else begin
    Alcotest.(check string) (kit.K.name ^ ": upgrade healthy") "ok"
      ni.R.ni_reason;
    Alcotest.(check int) (kit.K.name ^ ": no entry failed certification") 0
      ni.R.ni_rejected;
    (* tile level: the serving (native) entry vs the frozen Bigarray bank,
       random shapes and depths including the kc = 0 no-op *)
    let q =
      QCheck2.Test.make ~count:80
        ~name:(kit.K.name ^ ": native tile = bigarray tile")
        QCheck2.Gen.(
          pair
            (pair (int_range 1 mr) (int_range 1 nr))
            (pair (int_bound 33) (int_bound 1000)))
        (fun ((mr', nr'), (kc, seed)) ->
          exec (R.table_entry t ~mr:mr' ~nr:nr') ~mr:mr' ~nr:nr' ~kc ~seed
          = exec (R.table_base_entry t ~mr:mr' ~nr:nr') ~mr:mr' ~nr:nr' ~kc
              ~seed)
    in
    QCheck2.Test.check_exn q;
    (* whole-GEMM level, fringes in both m and n: native bank = bigarray
       bank = compiled-closure engine = binary32 naive reference *)
    let m, n, k = (3 * mr + 2, 2 * nr + 3, 37) in
    let a = M.init m k (fun i j -> float_of_int (((i + (2 * j)) mod 7) - 3)) in
    let b = M.init k n (fun i j -> float_of_int ((((3 * i) + j) mod 5) - 2)) in
    let blocking =
      Exo_blis.Analytical.compute Exo_isa.Machine.carmel ~mr ~nr ~dtype_bytes:4
    in
    let run kernels =
      let c = M.create m n in
      G.blis_ba ~blocking ~mr ~nr ~kernels a b c;
      c
    in
    R.reset_dispatch_counts ();
    let c_native = run (R.exo_bank ~kit ~mr ~nr ()) in
    let native_calls, _, fallback = R.ukr_tier_counts () in
    Alcotest.(check bool) (kit.K.name ^ ": native entries dispatched") true
      (native_calls > 0);
    Alcotest.(check int) (kit.K.name ^ ": no fallbacks") 0 fallback;
    let c_ba = run (R.exo_bank_ba ~kit ~mr ~nr ()) in
    let c_closure = M.create m n in
    G.blis ~blocking ~mr ~nr ~ukr:(R.exo_ukr ~kit ()) a b c_closure;
    let c_naive = M.create m n in
    G.naive_f32 a b c_naive;
    Alcotest.(check bool) (kit.K.name ^ ": native = bigarray") true
      (M.equal c_native c_ba);
    Alcotest.(check bool) (kit.K.name ^ ": native = closures") true
      (M.equal c_native c_closure);
    Alcotest.(check bool) (kit.K.name ^ ": native = naive f32") true
      (M.equal c_native c_naive)
  end

(* --- cached .so robustness ------------------------------------------------ *)

let test_corrupted_so_recompiles () =
  with_fresh_tables @@ fun dir ->
  let kit = K.avx2_f32 in
  let t1 = R.exo_table ~kit ~mr:4 ~nr:4 () in
  if t1.R.t_native_info.R.ni_entries = 0 then
    skip
      (Fmt.str "native tier unavailable (%s)" t1.R.t_native_info.R.ni_reason)
  else begin
    let so_dir = Filename.concat dir Jit.so_kind in
    Alcotest.(check bool) "a shared object was cached" true
      (Sys.file_exists so_dir);
    (* truncate every cached .so, then force a cold rebuild: the table
       must detect the damage, recompile, and serve native again *)
    let rec wreck path =
      if Sys.is_directory path then
        Array.iter (fun f -> wreck (Filename.concat path f)) (Sys.readdir path)
      else Unix.truncate path ((Unix.stat path).Unix.st_size / 2)
    in
    wreck so_dir;
    R.clear_memos_for_bench ();
    Store.reset_counts ();
    let compiles_before, _, _, _ = Jit.counts () in
    let t2 = R.exo_table ~kit ~mr:4 ~nr:4 () in
    let compiles_after, _, _, _ = Jit.counts () in
    let _, corrupt = Store.write_counts () in
    Alcotest.(check bool) "corruption detected as a miss" true (corrupt > 0);
    Alcotest.(check bool) "bank recompiled" true
      (compiles_after > compiles_before);
    Alcotest.(check int) "native tier restored"
      t1.R.t_native_info.R.ni_entries t2.R.t_native_info.R.ni_entries;
    Alcotest.(check (array (float 0.0))) "same tile after recompilation"
      (exec (R.table_entry t1 ~mr:3 ~nr:4) ~mr:3 ~nr:4 ~kc:17 ~seed:7)
      (exec (R.table_entry t2 ~mr:3 ~nr:4) ~mr:3 ~nr:4 ~kc:17 ~seed:7)
  end

(* --- graceful degradation ------------------------------------------------- *)

(* the table must still build, serve the Bigarray tier for every call, and
   stay exact — the native tier is an upgrade, never a dependency *)
let check_degraded ~name ~reason_fragment () =
  let kit = K.avx2_f32 in
  let mr, nr = (4, 4) in
  let t = R.exo_table ~kit ~mr ~nr () in
  let ni = t.R.t_native_info in
  Alcotest.(check bool) (name ^ ": tier reports disabled") false ni.R.ni_enabled;
  Alcotest.(check int) (name ^ ": no native entries") 0 ni.R.ni_entries;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Fmt.str "%s: reason %S mentions %S" name ni.R.ni_reason reason_fragment)
    true
    (contains ni.R.ni_reason reason_fragment);
  Alcotest.(check bool) (name ^ ": no native flags") true
    (Array.for_all not t.R.t_native);
  Alcotest.(check bool) (name ^ ": table still complete") true
    (R.table_complete t);
  let m, n, k = (14, 10, 23) in
  let a = M.init m k (fun i j -> float_of_int (((i + j) mod 5) - 2)) in
  let b = M.init k n (fun i j -> float_of_int ((((2 * i) + j) mod 5) - 2)) in
  let c = M.create m n in
  let blocking =
    Exo_blis.Analytical.compute Exo_isa.Machine.carmel ~mr ~nr ~dtype_bytes:4
  in
  R.reset_dispatch_counts ();
  G.blis_ba ~blocking ~mr ~nr ~kernels:(R.exo_bank ~kit ~mr ~nr ()) a b c;
  let native_calls, ba_calls, _ = R.ukr_tier_counts () in
  Alcotest.(check int) (name ^ ": zero native dispatches") 0 native_calls;
  Alcotest.(check bool) (name ^ ": bigarray tier served") true (ba_calls > 0);
  let c_ref = M.create m n in
  G.naive_f32 a b c_ref;
  Alcotest.(check bool) (name ^ ": GEMM exact") true (M.equal c c_ref)

let test_degrades_without_tier () =
  with_fresh_tables @@ fun _dir ->
  with_env Host.env_native "0"
    (check_degraded ~name:"UKRGEN_NATIVE=0" ~reason_fragment:"disabled")

let test_degrades_without_cc () =
  with_fresh_tables @@ fun _dir ->
  with_env Host.env_cc "/nonexistent/cc-for-test"
    (check_degraded ~name:"UKRGEN_CC=/nonexistent"
       ~reason_fragment:"no C compiler")

let () =
  Alcotest.run "native"
    [
      ( "host",
        [
          Alcotest.test_case "capability probe is well-formed" `Quick
            test_host_probe;
          Alcotest.test_case "env switches mask the tier per process" `Quick
            test_env_switches;
        ] );
      ( "differential",
        List.map
          (fun kit ->
            Alcotest.test_case
              (kit.K.name ^ ": native = bigarray = closures = naive")
              `Quick (test_differential kit))
          f32_kits );
      ( "robustness",
        [
          Alcotest.test_case "corrupted cached .so recompiles" `Quick
            test_corrupted_so_recompiles;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "UKRGEN_NATIVE=0: bigarray tier serves" `Quick
            test_degrades_without_tier;
          Alcotest.test_case "masked cc: bigarray tier serves" `Quick
            test_degrades_without_cc;
        ] );
    ]
