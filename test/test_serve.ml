(* The ukrgen-serve daemon: line protocol, request counters, and a full
   socket round trip with graceful shutdown.

   handle_request is exercised directly for the protocol contract (it
   never raises — malformed input becomes an ERR response and an error
   count, not a dead worker), then a real daemon is started on a temp
   socket and driven through the Client to pin the wire format, the warm
   second-request cache hit, and SHUTDOWN draining. *)

module Serve = Exo_serve.Serve
module Store = Exo_cache.Store

let req line = Serve.handle_request (Atomic.make false) line

let status line =
  match req line with [] -> Alcotest.fail "empty response" | s :: _ -> s

let test_ping () =
  Alcotest.(check (list string)) "pong" [ "OK pong" ] (req "PING");
  Alcotest.(check (list string)) "case-insensitive verb" [ "OK pong" ] (req "ping")

let test_protocol_errors () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Fmt.str "%S answers ERR" line)
        true
        (String.length (status line) >= 3
        && String.sub (status line) 0 3 = "ERR"))
    [
      "";
      "   ";
      "BOGUS";
      "GENERATE";
      "GENERATE neon-f32";
      "GENERATE no-such-kit 8x12";
      "GENERATE neon-f32 8by12";
      "GENERATE neon-f32 0x12";
      "TUNE 1 2";
      "TUNE a b c";
      "RUN 99999 4 4";
    ]

let test_generate () =
  match req "GENERATE neon-f32 8x12" with
  | s :: payload ->
      Alcotest.(check string) "status" "OK generated neon-f32 8x12" s;
      List.iter
        (fun want ->
          Alcotest.(check bool) (want ^ " reported") true (List.mem want payload))
        [ "kit neon-f32"; "shape 8x12"; "style packed"; "fast true"; "proved true" ]
  | [] -> Alcotest.fail "empty response"

let test_lint_and_tune () =
  (match req "LINT neon-f32 4x4" with
  | s :: payload ->
      Alcotest.(check string) "lint status" "OK lint neon-f32 4x4" s;
      Alcotest.(check bool) "proved" true (List.mem "proved true" payload)
  | [] -> Alcotest.fail "empty response");
  match req "TUNE 96 96 96" with
  | s :: payload ->
      Alcotest.(check bool) "tune status" true
        (String.length s >= 8 && String.sub s 0 8 = "OK tuned");
      Alcotest.(check bool) "a ranking line per shape" true (List.length payload > 0)
  | [] -> Alcotest.fail "empty response"

let test_shutdown_sets_stop () =
  let stop = Atomic.make false in
  Alcotest.(check (list string))
    "bye" [ "OK bye" ]
    (Serve.handle_request stop "SHUTDOWN");
  Alcotest.(check bool) "stop flag raised" true (Atomic.get stop)

let test_request_counters () =
  Serve.reset_request_counts ();
  ignore (req "PING");
  ignore (req "PING");
  ignore (req "NOPE");
  let total, errors, verbs = Serve.request_counts () in
  Alcotest.(check int) "total" 3 total;
  Alcotest.(check int) "errors" 1 errors;
  Alcotest.(check (option int)) "ping count" (Some 2) (List.assoc_opt "PING" verbs)

(* --- latency histograms, STATS lines, METRICS exposition ------------------ *)

let payload line =
  match req line with [] -> Alcotest.fail "empty response" | _ :: p -> p

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let find_line ~prefix lines =
  match List.find_opt (starts_with ~prefix) lines with
  | Some l -> l
  | None -> Alcotest.fail (Fmt.str "no line starting with %S" prefix)

let test_stats_latency_lines () =
  Serve.reset_request_counts ();
  ignore (req "PING");
  ignore (req "PING");
  ignore (req "GENERATE");
  (* malformed but a known verb: the per-verb error counter must move *)
  let p = payload "STATS" in
  Alcotest.(check string) "per-verb request count" "requests_ping 2"
    (find_line ~prefix:"requests_ping" p);
  Alcotest.(check string) "per-verb error count" "errors_generate 1"
    (find_line ~prefix:"errors_generate" p);
  Alcotest.(check string) "a healthy verb reports zero errors" "errors_ping 0"
    (find_line ~prefix:"errors_ping" p);
  (* latency_ping_us count 2 p50 F p95 F p99 F — quantiles in microseconds,
     nonnegative, and monotone p50 <= p95 <= p99 *)
  let l = find_line ~prefix:"latency_ping_us " p in
  (match String.split_on_char ' ' l with
  | [ _; "count"; "2"; "p50"; a; "p95"; b; "p99"; c ] ->
      let a = float_of_string a
      and b = float_of_string b
      and c = float_of_string c in
      Alcotest.(check bool) "quantiles nonnegative" true (a >= 0.0);
      Alcotest.(check bool) "quantiles monotone" true (a <= b && b <= c)
  | _ -> Alcotest.fail (Fmt.str "unexpected latency line %S" l))

let test_metrics_exposition () =
  Serve.reset_request_counts ();
  ignore (req "PING");
  ignore (req "PING");
  ignore (req "GENERATE");
  let p = payload "METRICS" in
  let has affix = List.exists (starts_with ~prefix:affix) p in
  Alcotest.(check bool) "histogram TYPE line" true
    (List.mem "# TYPE ukrgen_request_latency_us histogram" p);
  Alcotest.(check bool) "a ping bucket series" true
    (has "ukrgen_request_latency_us_bucket{verb=\"ping\",le=\"");
  Alcotest.(check bool) "+Inf closes the ping series" true
    (List.mem "ukrgen_request_latency_us_bucket{verb=\"ping\",le=\"+Inf\"} 2" p);
  Alcotest.(check bool) "count matches observations" true
    (List.mem "ukrgen_request_latency_us_count{verb=\"ping\"} 2" p);
  Alcotest.(check bool) "per-verb error counter" true
    (List.mem "ukrgen_request_errors{verb=\"generate\"} 1" p);
  Alcotest.(check bool) "cache counters exposed" true
    (has "ukrgen_cache_hits ");
  (* cumulative buckets never decrease along the le bounds *)
  let cums =
    List.filter_map
      (fun l ->
        if starts_with ~prefix:"ukrgen_request_latency_us_bucket{verb=\"ping\"" l
        then
          match String.rindex_opt l ' ' with
          | Some i ->
              Some
                (int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
          | None -> None
        else None)
      p
  in
  Alcotest.(check bool) "cumulative series is monotone" true
    (fst
       (List.fold_left
          (fun (ok, prev) n -> (ok && n >= prev, n))
          (true, 0) cums))

(* --- the JSONL access log -------------------------------------------------- *)

module Ledger = Exo_ledger.Ledger

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let with_access_log ?max_bytes f =
  let path = Filename.temp_file "exo-serve-access" ".jsonl" in
  Sys.remove path;
  Serve.set_access_log ?max_bytes (Some path);
  Fun.protect
    ~finally:(fun () ->
      Serve.set_access_log None;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".1" ])
  @@ fun () -> f path

let test_access_log_lines () =
  with_access_log @@ fun path ->
  Alcotest.(check (option string))
    "path queryable" (Some path)
    (Serve.access_log_path ());
  ignore (req "PING");
  ignore (req "NOPE");
  let lines = read_lines path in
  Alcotest.(check int) "one line per request" 2 (List.length lines);
  List.iter
    (fun l ->
      match Ledger.Json.parse l with
      | Error e -> Alcotest.fail (Fmt.str "unparseable access line %S: %s" l e)
      | Ok j ->
          Alcotest.(check bool) "ts present" true
            (Option.is_some Ledger.Json.(Option.bind (member "ts" j) num));
          Alcotest.(check bool) "us present" true
            (Option.is_some Ledger.Json.(Option.bind (member "us" j) num)))
    lines;
  let verb_ok l =
    Ledger.Json.(
      match parse l with
      | Ok j ->
          ( Option.bind (member "verb" j) str,
            Option.bind (member "ok" j) bool_ )
      | Error _ -> (None, None))
  in
  (match lines with
  | [ a; b ] ->
      Alcotest.(check (pair (option string) (option bool)))
        "ping succeeds" (Some "PING", Some true) (verb_ok a);
      Alcotest.(check (pair (option string) (option bool)))
        "unknown verb logged as failed" (Some "NOPE", Some false) (verb_ok b)
  | _ -> Alcotest.fail "expected exactly two lines")

let test_access_log_rotation () =
  with_access_log ~max_bytes:256 @@ fun path ->
  for _ = 1 to 40 do
    ignore (req "PING")
  done;
  Alcotest.(check bool) "live file present" true (Sys.file_exists path);
  Alcotest.(check bool) "rotated file present" true
    (Sys.file_exists (path ^ ".1"));
  (* rotation bounds each file near max_bytes (one line of slack) and
     every surviving line is whole — rename never tears a record *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "%s bounded" (Filename.basename p))
        true
        ((Unix.stat p).Unix.st_size <= 256 + 128);
      List.iter
        (fun l ->
          match Ledger.Json.parse l with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Fmt.str "torn line %S: %s" l e))
        (read_lines p))
    [ path; path ^ ".1" ]

(* --- the socket ---------------------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "exo-serve-test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_socket_round_trip () =
  let dir = temp_dir () in
  Store.set_ambient (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Store.set_ambient None;
      rm_rf dir)
  @@ fun () ->
  let socket = Filename.temp_file "exo-serve-test" ".sock" in
  let t = Serve.start ~workers:2 ~socket () in
  Fun.protect ~finally:(fun () ->
      Serve.stop t;
      Serve.wait t)
  @@ fun () ->
  let s, _ = Serve.Client.request ~socket "PING" in
  Alcotest.(check string) "ping over the wire" "OK pong" s;
  (* identical requests: the first warms the in-memory memo (the daemon
     start already built the table, so the ambient store reports hits) *)
  let s1, p1 = Serve.Client.request ~socket "GENERATE neon-f32 8x12" in
  let s2, p2 = Serve.Client.request ~socket "GENERATE neon-f32 8x12" in
  Alcotest.(check string) "generate ok" "OK generated neon-f32 8x12" s1;
  Alcotest.(check string) "repeat identical status" s1 s2;
  Alcotest.(check (list string)) "repeat identical payload" p1 p2;
  (* a concurrent pair of clients (the daemon has two accept workers) *)
  let d1 = Domain.spawn (fun () -> Serve.Client.request ~socket "STATS") in
  let d2 = Domain.spawn (fun () -> Serve.Client.request ~socket "PING") in
  let st1, _ = Domain.join d1 and st2, _ = Domain.join d2 in
  Alcotest.(check bool) "concurrent stats ok" true (Serve.Client.ok st1);
  Alcotest.(check string) "concurrent ping ok" "OK pong" st2;
  (* graceful shutdown over the wire: the daemon answers, then drains *)
  let s, _ = Serve.Client.request ~socket "SHUTDOWN" in
  Alcotest.(check string) "shutdown acknowledged" "OK bye" s;
  Serve.wait t;
  Alcotest.(check bool) "socket unlinked after drain" false (Sys.file_exists socket)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "malformed requests answer ERR" `Quick
            test_protocol_errors;
          Alcotest.test_case "generate payload" `Quick test_generate;
          Alcotest.test_case "lint and tune payloads" `Quick test_lint_and_tune;
          Alcotest.test_case "shutdown raises the stop flag" `Quick
            test_shutdown_sets_stop;
          Alcotest.test_case "request counters" `Quick test_request_counters;
        ] );
      ( "observability",
        [
          Alcotest.test_case "STATS latency and per-verb error lines" `Quick
            test_stats_latency_lines;
          Alcotest.test_case "METRICS Prometheus exposition" `Quick
            test_metrics_exposition;
          Alcotest.test_case "access log lines" `Quick test_access_log_lines;
          Alcotest.test_case "access log rotation" `Quick
            test_access_log_rotation;
        ] );
      ( "socket",
        [
          Alcotest.test_case "round trip, concurrency, graceful drain" `Quick
            test_socket_round_trip;
        ] );
    ]
