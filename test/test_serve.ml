(* The ukrgen-serve daemon: line protocol, request counters, and a full
   socket round trip with graceful shutdown.

   handle_request is exercised directly for the protocol contract (it
   never raises — malformed input becomes an ERR response and an error
   count, not a dead worker), then a real daemon is started on a temp
   socket and driven through the Client to pin the wire format, the warm
   second-request cache hit, and SHUTDOWN draining. *)

module Serve = Exo_serve.Serve
module Store = Exo_cache.Store

let req line = Serve.handle_request (Atomic.make false) line

let status line =
  match req line with [] -> Alcotest.fail "empty response" | s :: _ -> s

let test_ping () =
  Alcotest.(check (list string)) "pong" [ "OK pong" ] (req "PING");
  Alcotest.(check (list string)) "case-insensitive verb" [ "OK pong" ] (req "ping")

let test_protocol_errors () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Fmt.str "%S answers ERR" line)
        true
        (String.length (status line) >= 3
        && String.sub (status line) 0 3 = "ERR"))
    [
      "";
      "   ";
      "BOGUS";
      "GENERATE";
      "GENERATE neon-f32";
      "GENERATE no-such-kit 8x12";
      "GENERATE neon-f32 8by12";
      "GENERATE neon-f32 0x12";
      "TUNE 1 2";
      "TUNE a b c";
      "RUN 99999 4 4";
    ]

let test_generate () =
  match req "GENERATE neon-f32 8x12" with
  | s :: payload ->
      Alcotest.(check string) "status" "OK generated neon-f32 8x12" s;
      List.iter
        (fun want ->
          Alcotest.(check bool) (want ^ " reported") true (List.mem want payload))
        [ "kit neon-f32"; "shape 8x12"; "style packed"; "fast true"; "proved true" ]
  | [] -> Alcotest.fail "empty response"

let test_lint_and_tune () =
  (match req "LINT neon-f32 4x4" with
  | s :: payload ->
      Alcotest.(check string) "lint status" "OK lint neon-f32 4x4" s;
      Alcotest.(check bool) "proved" true (List.mem "proved true" payload)
  | [] -> Alcotest.fail "empty response");
  match req "TUNE 96 96 96" with
  | s :: payload ->
      Alcotest.(check bool) "tune status" true
        (String.length s >= 8 && String.sub s 0 8 = "OK tuned");
      Alcotest.(check bool) "a ranking line per shape" true (List.length payload > 0)
  | [] -> Alcotest.fail "empty response"

let test_shutdown_sets_stop () =
  let stop = Atomic.make false in
  Alcotest.(check (list string))
    "bye" [ "OK bye" ]
    (Serve.handle_request stop "SHUTDOWN");
  Alcotest.(check bool) "stop flag raised" true (Atomic.get stop)

let test_request_counters () =
  Serve.reset_request_counts ();
  ignore (req "PING");
  ignore (req "PING");
  ignore (req "NOPE");
  let total, errors, verbs = Serve.request_counts () in
  Alcotest.(check int) "total" 3 total;
  Alcotest.(check int) "errors" 1 errors;
  Alcotest.(check (option int)) "ping count" (Some 2) (List.assoc_opt "PING" verbs)

(* --- the socket ---------------------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "exo-serve-test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let test_socket_round_trip () =
  let dir = temp_dir () in
  Store.set_ambient (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Store.set_ambient None;
      rm_rf dir)
  @@ fun () ->
  let socket = Filename.temp_file "exo-serve-test" ".sock" in
  let t = Serve.start ~workers:2 ~socket () in
  Fun.protect ~finally:(fun () ->
      Serve.stop t;
      Serve.wait t)
  @@ fun () ->
  let s, _ = Serve.Client.request ~socket "PING" in
  Alcotest.(check string) "ping over the wire" "OK pong" s;
  (* identical requests: the first warms the in-memory memo (the daemon
     start already built the table, so the ambient store reports hits) *)
  let s1, p1 = Serve.Client.request ~socket "GENERATE neon-f32 8x12" in
  let s2, p2 = Serve.Client.request ~socket "GENERATE neon-f32 8x12" in
  Alcotest.(check string) "generate ok" "OK generated neon-f32 8x12" s1;
  Alcotest.(check string) "repeat identical status" s1 s2;
  Alcotest.(check (list string)) "repeat identical payload" p1 p2;
  (* a concurrent pair of clients (the daemon has two accept workers) *)
  let d1 = Domain.spawn (fun () -> Serve.Client.request ~socket "STATS") in
  let d2 = Domain.spawn (fun () -> Serve.Client.request ~socket "PING") in
  let st1, _ = Domain.join d1 and st2, _ = Domain.join d2 in
  Alcotest.(check bool) "concurrent stats ok" true (Serve.Client.ok st1);
  Alcotest.(check string) "concurrent ping ok" "OK pong" st2;
  (* graceful shutdown over the wire: the daemon answers, then drains *)
  let s, _ = Serve.Client.request ~socket "SHUTDOWN" in
  Alcotest.(check string) "shutdown acknowledged" "OK bye" s;
  Serve.wait t;
  Alcotest.(check bool) "socket unlinked after drain" false (Sys.file_exists socket)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "malformed requests answer ERR" `Quick
            test_protocol_errors;
          Alcotest.test_case "generate payload" `Quick test_generate;
          Alcotest.test_case "lint and tune payloads" `Quick test_lint_and_tune;
          Alcotest.test_case "shutdown raises the stop flag" `Quick
            test_shutdown_sets_stop;
          Alcotest.test_case "request counters" `Quick test_request_counters;
        ] );
      ( "socket",
        [
          Alcotest.test_case "round trip, concurrency, graceful drain" `Quick
            test_socket_round_trip;
        ] );
    ]
