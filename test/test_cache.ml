(* The content-addressed persistent store: Exo_cache.Store and its
   consumers (Registry table hydration, Family.generate_cached, the tuner
   ranking).

   The load-bearing contracts pinned here:

   1. Robustness — a zero-length, truncated or bit-flipped entry reads as
      a miss (counted corrupt, unlinked) and is recomputed, never a crash
      or a wrong value; a store full of corrupted kernel artifacts still
      rebuilds a complete, certified table.

   2. First-writer-wins — concurrent writers (domains of pool widths
      1/2/4, and a second process) converge on one published value; a
      late [put] against an existing entry reports [false].

   3. Invalidation by keying — the kit digest is stable across calls and
      moves whenever the kit (schedule steps, instruction procs) moves,
      so stale artifacts are never served, just stranded.

   4. Hydration fidelity — a table rebuilt from disk is bit-identical to
      the freshly compiled one: same fast/proved flags on every kit, and
      the same C tile from every executor (qcheck, all 6 kits). *)

module Store = Exo_cache.Store
module R = Exo_blis.Registry
module F = Exo_ukr_gen.Family
module K = Exo_ukr_gen.Kits

let temp_dir () =
  let f = Filename.temp_file "exo-cache-test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_temp_store f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.of_dir dir))

(* ambient-store scope for the consumer-facing tests; always restored so
   later cases (and the default no-cache behaviour) are unaffected *)
let with_ambient f =
  let dir = temp_dir () in
  Store.set_ambient (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Store.set_ambient None;
      rm_rf dir)
    (fun () -> f dir)

(* --- the store itself ---------------------------------------------------- *)

let test_roundtrip () =
  with_temp_store @@ fun st ->
  Store.reset_counts ();
  let key = Store.key [ "abi-v1"; "roundtrip" ] in
  Alcotest.(check (option (list int)))
    "missing entry" None
    (Store.get st ~kind:"t" ~key);
  Alcotest.(check bool) "first put wins" true (Store.put st ~kind:"t" ~key [ 1; 2; 3 ]);
  Alcotest.(check (option (list int)))
    "roundtrip" (Some [ 1; 2; 3 ])
    (Store.get st ~kind:"t" ~key);
  Alcotest.(check bool)
    "late put loses" false
    (Store.put st ~kind:"t" ~key [ 9 ]);
  Alcotest.(check (option (list int)))
    "first writer's value survives" (Some [ 1; 2; 3 ])
    (Store.get st ~kind:"t" ~key);
  let hits, misses = Store.hit_miss_counts () in
  let writes, corrupt = Store.write_counts () in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "writes" 1 writes;
  Alcotest.(check int) "corrupt" 0 corrupt;
  Alcotest.(check int) "one entry of the kind" 1 (Store.entry_count st ~kind:"t")

let corrupt_file path mode =
  match mode with
  | `Zero ->
      let oc = open_out path in
      close_out oc
  | `Truncate ->
      let n = (Unix.stat path).Unix.st_size in
      Unix.truncate path (max 1 (n / 2))
  | `Flip ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      close_in ic;
      let i = n - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc

let test_corruption_reads_as_miss () =
  with_temp_store @@ fun st ->
  List.iter
    (fun (name, mode) ->
      Store.reset_counts ();
      let key = Store.key [ "abi-v1"; "corrupt"; name ] in
      Alcotest.(check bool)
        (name ^ ": put") true
        (Store.put st ~kind:"c" ~key (name, [| 1.5; 2.5 |]));
      corrupt_file (Store.path st ~kind:"c" ~key) mode;
      Alcotest.(check (option (pair string (array (float 0.0)))))
        (name ^ ": corrupt entry reads as a miss")
        None
        (Store.get st ~kind:"c" ~key);
      Alcotest.(check bool)
        (name ^ ": bad entry dropped from disk")
        false
        (Sys.file_exists (Store.path st ~kind:"c" ~key));
      let _, corrupt = Store.write_counts () in
      Alcotest.(check int) (name ^ ": counted corrupt") 1 corrupt;
      (* the recompute path republishes cleanly *)
      Alcotest.(check (pair string (array (float 0.0))))
        (name ^ ": find_or_add recomputes")
        (name, [| 1.5; 2.5 |])
        (Store.find_or_add st ~kind:"c" ~key (fun () -> (name, [| 1.5; 2.5 |])));
      Alcotest.(check (option (pair string (array (float 0.0)))))
        (name ^ ": republished")
        (Some (name, [| 1.5; 2.5 |]))
        (Store.get st ~kind:"c" ~key))
    [ ("zero-length", `Zero); ("truncated", `Truncate); ("bit-flipped", `Flip) ]

let test_concurrent_domains_first_writer_wins () =
  with_temp_store @@ fun st ->
  List.iter
    (fun jobs ->
      let key = Store.key [ "abi-v1"; "race"; string_of_int jobs ] in
      let pool = Exo_par.Pool.create ~jobs () in
      (* every worker proposes its own value; all must come back with the
         single published one *)
      let got =
        Exo_par.Pool.map pool
          (fun i -> Store.find_or_add st ~kind:"r" ~key (fun () -> i))
          [ 10; 20; 30; 40; 50; 60; 70; 80 ]
      in
      let winner = Option.get (Store.get st ~kind:"r" ~key) in
      Alcotest.(check bool)
        (Fmt.str "width %d: winner is one of the proposals" jobs)
        true
        (List.mem winner [ 10; 20; 30; 40; 50; 60; 70; 80 ]);
      List.iter
        (fun v ->
          Alcotest.(check int)
            (Fmt.str "width %d: every domain converged" jobs)
            winner v)
        got)
    [ 1; 2; 4 ]

let test_two_processes_first_writer_wins () =
  with_temp_store @@ fun st ->
  let key = Store.key [ "abi-v1"; "process-race" ] in
  (match Unix.fork () with
  | 0 ->
      (* the child is the first writer *)
      ignore (Store.put st ~kind:"p" ~key "child");
      Unix._exit 0
  | pid -> ignore (Unix.waitpid [] pid));
  Alcotest.(check bool)
    "second process's put loses" false
    (Store.put st ~kind:"p" ~key "parent");
  Alcotest.(check (option string))
    "both processes see the first writer's value" (Some "child")
    (Store.get st ~kind:"p" ~key)

let test_gc_lru_sweep () =
  with_temp_store @@ fun st ->
  (* five same-sized entries with staggered mtimes, entry i older than
     entry i+1 — the sweep must keep exactly the newest ones that fit *)
  let keyed = List.init 5 (fun i -> (i, Store.key [ "abi-v1"; "gc"; string_of_int i ])) in
  let now = Unix.time () in
  List.iter
    (fun (i, key) ->
      Alcotest.(check bool) "published" true
        (Store.put st ~kind:"g" ~key (String.make 64 'x'));
      let t = now -. float_of_int (3600 * (5 - i)) in
      Unix.utimes (Store.path st ~kind:"g" ~key) t t)
    keyed;
  let size = (Unix.stat (Store.path st ~kind:"g" ~key:(snd (List.hd keyed)))).Unix.st_size in
  (* an unpublished in-flight temp file must survive any sweep *)
  let tmp = Filename.concat (Filename.dirname (Store.path st ~kind:"g" ~key:(snd (List.hd keyed)))) ".wr0.tmp" in
  let oc = open_out tmp in
  output_string oc "in-flight";
  close_out oc;
  let s = Store.gc st ~max_bytes:(2 * size) in
  Alcotest.(check int) "scanned all entries (temp file excluded)" 5 s.Store.gc_scanned;
  Alcotest.(check int) "deleted the three oldest" 3 s.Store.gc_deleted;
  Alcotest.(check int) "kept two entries' bytes" (2 * size) s.Store.gc_kept_bytes;
  Alcotest.(check int) "freed three entries' bytes" (3 * size) s.Store.gc_freed_bytes;
  List.iter
    (fun (i, key) ->
      Alcotest.(check bool)
        (Fmt.str "entry %d %s" i (if i >= 3 then "survives" else "swept"))
        (i >= 3)
        (Store.get st ~kind:"g" ~key <> None))
    keyed;
  Alcotest.(check bool) "in-flight temp file untouched" true (Sys.file_exists tmp);
  (* a zero budget empties the store *)
  let s0 = Store.gc st ~max_bytes:0 in
  Alcotest.(check int) "zero budget sweeps the rest" 2 s0.Store.gc_deleted;
  Alcotest.(check int) "nothing kept" 0 s0.Store.gc_kept_bytes;
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Store.gc: max_bytes must be >= 0") (fun () ->
      ignore (Store.gc st ~max_bytes:(-1)))

let test_kit_digest_stable_and_sensitive () =
  let d1 = K.digest K.neon_f32 and d2 = K.digest K.neon_f32 in
  Alcotest.(check string) "digest is stable" d1 d2;
  List.iter
    (fun kit ->
      if kit.K.name <> K.neon_f32.K.name then
        Alcotest.(check bool)
          (Fmt.str "digest separates %s from neon-f32" kit.K.name)
          false
          (K.digest kit = d1))
    K.all;
  (* the invalidation mechanism: a kit whose declared schedule moved keys
     different artifact paths, so stale entries are stranded, not served *)
  let moved = { K.neon_f32 with K.sched_steps = K.neon_f32.K.sched_steps + 1 } in
  Alcotest.(check bool) "digest moves with the schedule" false (K.digest moved = d1);
  let entry_key kit =
    Store.key
      [ "regtable-v1"; Sys.ocaml_version; kit.K.name; K.digest kit;
        string_of_int kit.K.sched_steps; "8"; "12"; "simple" ]
  in
  Alcotest.(check bool)
    "table-artifact keys move with the digest" false
    (entry_key moved = entry_key K.neon_f32)

(* --- the consumers ------------------------------------------------------- *)

let test_family_generate_cached_hydrates () =
  with_ambient @@ fun _dir ->
  let st = Option.get (Store.ambient ()) in
  let k1 = F.generate_cached ~mr:6 ~nr:10 () in
  Alcotest.(check int) "one family artifact" 1 (Store.entry_count st ~kind:"family");
  Store.reset_counts ();
  let k2 = F.generate_cached ~mr:6 ~nr:10 () in
  let hits, misses = Store.hit_miss_counts () in
  Alcotest.(check int) "hydration hit" 1 hits;
  Alcotest.(check int) "no miss" 0 misses;
  Alcotest.(check bool) "same style" true (k1.F.style = k2.F.style);
  Alcotest.(check string) "identical printed kernel"
    (Exo_ir.Pp.proc_to_string k1.F.proc)
    (Exo_ir.Pp.proc_to_string k2.F.proc);
  (* the unmarshaled proc's symbol ids must not poison later generation:
     a fresh kernel after hydration still certifies *)
  let fresh = F.generate ~mr:5 ~nr:7 () in
  let r = Exo_check.Bounds.check_proc fresh.F.proc in
  Alcotest.(check bool) "fresh kernel after hydration certifies" true
    (r.Exo_check.Bounds.violations = [] && r.Exo_check.Bounds.unknowns = [])

let test_corrupted_kernel_artifacts_rebuild () =
  with_ambient @@ fun dir ->
  let t1 = R.exo_table ~mr:8 ~nr:12 () in
  (* wreck every kernel artifact on disk, then force a rebuild: the store
     must shrug (recompute + republish), not crash or serve garbage *)
  let kernel_dir = Filename.concat dir "kernel" in
  let rec wreck path =
    if Sys.is_directory path then
      Array.iter (fun f -> wreck (Filename.concat path f)) (Sys.readdir path)
    else corrupt_file path `Truncate
  in
  wreck kernel_dir;
  R.clear_memos_for_bench ();
  Store.reset_counts ();
  let t2 = R.exo_table ~mr:8 ~nr:12 () in
  let _, corrupt = Store.write_counts () in
  Alcotest.(check bool) "corruption detected" true (corrupt > 0);
  Alcotest.(check bool) "rebuilt table complete" true (R.table_complete t2);
  Alcotest.(check bool) "rebuilt table certified" true
    (Array.for_all Fun.id t2.R.t_proved);
  Alcotest.(check (array bool)) "same flags as the pristine build"
    t1.R.t_fast t2.R.t_fast

(* --- hydration fidelity (qcheck, all kits) ------------------------------- *)

let exec (u : Exo_interp.Compile.ukr_ba) ~mr ~nr ~kc ~seed =
  let st = Random.State.make [| mr; nr; kc; seed |] in
  let mk n =
    let b = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      Bigarray.Array1.set b i (float_of_int (Random.State.int st 7 - 3))
    done;
    b
  in
  let ac = mk (kc * mr) and bc = mk (kc * nr) in
  let c = mk (mr * nr) in
  u ~kc ~ac ~ao:0 ~bc ~bo:0 ~c ~co:0;
  Array.init (mr * nr) (Bigarray.Array1.get c)

let test_hydrated_tables_bit_identical () =
  with_ambient @@ fun _dir ->
  (* cold-build every kit's table (publishing artifacts), wipe the
     in-memory memos, rebuild from disk, and compare *)
  let cold = List.map (fun kit -> (kit, R.exo_table ~kit ~mr:8 ~nr:12 ())) K.all in
  R.clear_memos_for_bench ();
  Store.reset_counts ();
  let warm = List.map (fun kit -> (kit, R.exo_table ~kit ~mr:8 ~nr:12 ())) K.all in
  let hits, _ = Store.hit_miss_counts () in
  Alcotest.(check bool) "rebuild hydrated from disk" true (hits > 0);
  List.iter2
    (fun (kit, (tc : R.table)) (_, (tw : R.table)) ->
      Alcotest.(check (array bool))
        (kit.K.name ^ ": fast flags survive hydration")
        tc.R.t_fast tw.R.t_fast;
      Alcotest.(check (array bool))
        (kit.K.name ^ ": proved flags survive hydration")
        tc.R.t_proved tw.R.t_proved)
    cold warm;
  (* executable fidelity on the f32 kits: every hydrated executor computes
     the same C tile as the one compiled from scratch *)
  let f32 =
    List.filter_map
      (fun ((kit, tc), (_, tw)) ->
        if kit.K.dt = Exo_ir.Dtype.F32 then Some (tc, tw) else None)
      (List.combine cold warm)
  in
  let q =
    QCheck2.Test.make ~count:60
      ~name:"hydrated executor = fresh executor on random tiles"
      QCheck2.Gen.(
        pair
          (pair (int_bound 20) (int_range 1 8))
          (pair (int_range 1 12) (pair (int_range 1 24) (int_bound 1000))))
      (fun ((ki, mr'), (nr', (kc, seed))) ->
        let tc, tw = List.nth f32 (ki mod List.length f32) in
        exec (R.table_entry tc ~mr:mr' ~nr:nr') ~mr:mr' ~nr:nr' ~kc ~seed
        = exec (R.table_entry tw ~mr:mr' ~nr:nr') ~mr:mr' ~nr:nr' ~kc ~seed)
  in
  QCheck2.Test.check_exn q

let () =
  Alcotest.run "cache"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip, counters, first-writer-wins" `Quick
            test_roundtrip;
          Alcotest.test_case "corrupt entries read as misses and recompute"
            `Quick test_corruption_reads_as_miss;
          (* before any test that spawns a domain: OCaml 5 forbids fork
             once other domains have run *)
          Alcotest.test_case "two processes converge" `Quick
            test_two_processes_first_writer_wins;
          Alcotest.test_case "concurrent domains converge (widths 1/2/4)"
            `Quick test_concurrent_domains_first_writer_wins;
          Alcotest.test_case "gc: LRU sweep within a byte budget" `Quick
            test_gc_lru_sweep;
        ] );
      ( "keying",
        [
          Alcotest.test_case "kit digest stable and schedule-sensitive" `Quick
            test_kit_digest_stable_and_sensitive;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "Family.generate_cached hydrates" `Quick
            test_family_generate_cached_hydrates;
          Alcotest.test_case "corrupted kernel artifacts rebuild cleanly"
            `Quick test_corrupted_kernel_artifacts_rebuild;
          Alcotest.test_case "hydrated tables bit-identical (all kits)" `Slow
            test_hydrated_tables_bit_identical;
        ] );
    ]
