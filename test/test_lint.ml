(* Tests of the static kernel lint (Exo_check.Vlint + the Exo_ukr_gen.Lint
   sweep): the whole generated family must pass, the Fig. 12 census is
   pinned for the 8x12 f32 kernel, and every lint rule has a negative. *)

open Exo_ir
open Ir
open Builder
module V = Exo_check.Vlint
module L = Exo_ukr_gen.Lint
module F = Exo_ukr_gen.Family
module K = Exo_ukr_gen.Kits

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let has_rule rule (r : V.report) = List.exists (fun (f : V.finding) -> f.V.rule = rule) r.V.findings

(* --- the full-family sweep ----------------------------------------------- *)

let test_sweep_all_ok () =
  let o = L.run () in
  check_bool "every generated kernel passes the lint" true (L.all_ok o);
  check_int "lint failures" 0 (L.failures o);
  (* 6 kits x 8 paper shapes at minimum, plus whatever variants apply *)
  check_bool "sweep covers the whole family" true
    (List.length o.L.entries >= List.length K.all * List.length F.paper_shapes)

let test_sweep_jobs_identical () =
  (* the sweep outcome — entries, order, every verdict — is structurally
     identical no matter how many domains it fans out on *)
  let one = L.run ~jobs:1 () in
  let three = L.run ~jobs:3 () in
  check_bool "outcomes identical at 1 vs 3 domains" true (one = three)

(* --- the Fig. 12 pin ----------------------------------------------------- *)

let test_fig12_census () =
  let k = F.generate ~mr:8 ~nr:12 () in
  let c = V.steady_census k.F.proc in
  check_int "vector loads per k iteration" 5 c.V.loads;
  check_int "fmla per k iteration" 24 c.V.fmas;
  check_int "stores in steady state" 0 c.V.stores;
  check_int "scalar ops in steady state" 0 c.V.scalars

let test_fig12_report () =
  let k = F.generate ~mr:8 ~nr:12 () in
  let t = L.target_of_kit K.neon_f32 in
  let e = L.expect_of K.neon_f32 k.F.style ~mr:8 ~nr:12 in
  let r = V.check t e k.F.proc in
  check_bool "8x12 f32 kernel passes every rule" true (V.ok r);
  check_bool "within the 32-register NEON file" true (r.V.vregs <= 32);
  check_int "accumulators + operand registers" 29 r.V.vregs

let test_vregs_descriptor () =
  (* the pressure budget is part of the kit's ISA descriptor: every kit's
     declared register file agrees with its Memories entry, and the lint
     target reads the descriptor (not a hardcoded Carmel number) *)
  List.iter
    (fun (kit : K.t) ->
      check_int
        (Fmt.str "%s vregs agrees with its Memories entry" kit.K.name)
        (Exo_isa.Memories.lookup_exn kit.K.mem).Exo_isa.Memories.num_regs
        kit.K.vregs;
      check_int
        (Fmt.str "%s lint budget reads the descriptor" kit.K.name)
        kit.K.vregs
        (L.target_of_kit kit).V.max_vregs)
    K.all;
  check_int "avx2 budget is its 16-entry file" 16
    (L.target_of_kit K.avx2_f32).V.max_vregs;
  check_int "neon budget is its 32-entry file" 32
    (L.target_of_kit K.neon_f32).V.max_vregs

let test_expected_census_formulas () =
  (* the derivation matches what the schedules actually emit, per style *)
  List.iter
    (fun (kit : K.t) ->
      List.iter
        (fun (mr, nr) ->
          let k = F.generate ~kit ~mr ~nr () in
          match L.expected_census kit k.F.style ~mr ~nr with
          | None -> ()
          | Some expected ->
              Alcotest.(check string)
                (Fmt.str "%s %dx%d census" kit.K.name mr nr)
                (Fmt.str "%a" V.pp_census expected)
                (Fmt.str "%a" V.pp_census (V.steady_census k.F.proc)))
        F.paper_shapes)
    K.all

(* --- one negative per rule ----------------------------------------------- *)

let scalar_expect = { V.vectorized = false; census = None; writable = [ "t" ] }
let neon_target = L.target_of_kit K.neon_f32

let test_neg_bounds () =
  (* reads past the extent: for i in [0,7): t[i] on a 6-element tensor *)
  let t = Sym.fresh "t" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"oob"
      ~args:[ tensor_arg t Dtype.F32 [ int 6 ] ]
      [ loop i (int 0) (int 7) [ assign t [ var i ] (flt 0.0) ] ]
  in
  let r = V.check neon_target scalar_expect p in
  check_bool "bounds violation reported" true (has_rule "bounds" r);
  check_bool "report not ok" false (V.ok r)

let test_neg_vregs () =
  let k = F.generate ~mr:8 ~nr:12 () in
  let t = { neon_target with V.max_vregs = 1 } in
  let r = V.check t (L.expect_of K.neon_f32 k.F.style ~mr:8 ~nr:12) k.F.proc in
  check_bool "register budget violation reported" true (has_rule "vregs" r)

let test_neg_scalar_ops () =
  (* a scalar assign inside the symbolic (runtime-trip-count) loop *)
  let t = Sym.fresh "t" and n = Sym.fresh "N" and k = Sym.fresh "k" in
  let p =
    mk_proc ~name:"scalar_in_k"
      ~args:[ size_arg n; tensor_arg t Dtype.F32 [ int 4 ] ]
      [ loop k (int 0) (var n) [ assign t [ int 0 ] (flt 1.0) ] ]
  in
  let e = { V.vectorized = true; census = None; writable = [ "t" ] } in
  let r = V.check neon_target e p in
  check_bool "scalar op in vectorized kernel reported" true (has_rule "scalar-ops" r);
  (* the same kernel declared non-vectorized is fine *)
  let r' = V.check neon_target { e with V.vectorized = false } p in
  check_bool "scalar style is exempt" false (has_rule "scalar-ops" r')

let test_neg_census () =
  let k = F.generate ~mr:8 ~nr:12 () in
  let e =
    { V.vectorized = true; census = Some V.census_zero; writable = [ "C" ] }
  in
  let r = V.check neon_target e k.F.proc in
  check_bool "census mismatch reported" true (has_rule "census" r)

let test_neg_effects () =
  let k = F.generate ~mr:8 ~nr:12 () in
  let e = { V.vectorized = true; census = None; writable = [] } in
  let r = V.check neon_target e k.F.proc in
  check_bool "write to undeclared output reported" true (has_rule "effects" r)

let test_certify_rejects () =
  (* Family.certify refuses a proc whose accesses are not all Proved *)
  let t = Sym.fresh "t" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"oob"
      ~args:[ tensor_arg t Dtype.F32 [ int 6 ] ]
      [ loop i (int 0) (int 7) [ assign t [ var i ] (flt 0.0) ] ]
  in
  check_bool "certify raises on a bounds violation" true
    (match F.certify p with
    | _ -> false
    | exception Exo_sched.Sched.Sched_error _ -> true);
  let ok =
    mk_proc ~name:"fine"
      ~args:[ tensor_arg t Dtype.F32 [ int 6 ] ]
      [ loop i (int 0) (int 6) [ assign t [ var i ] (flt 0.0) ] ]
  in
  check_bool "certify passes a proved proc" true (F.certify ok == ok)

let () =
  Alcotest.run "lint"
    [
      ( "sweep",
        [
          Alcotest.test_case "whole family passes" `Quick test_sweep_all_ok;
          Alcotest.test_case "jobs-invariant outcome" `Quick test_sweep_jobs_identical;
          Alcotest.test_case "census formulas match the schedules" `Quick
            test_expected_census_formulas;
        ] );
      ( "fig12",
        [
          Alcotest.test_case "vregs budget from the kit descriptor" `Quick
            test_vregs_descriptor;
          Alcotest.test_case "8x12 census: 5 loads + 24 fmla" `Quick test_fig12_census;
          Alcotest.test_case "8x12 report: all rules, 29 vregs" `Quick test_fig12_report;
        ] );
      ( "negatives",
        [
          Alcotest.test_case "bounds" `Quick test_neg_bounds;
          Alcotest.test_case "vregs" `Quick test_neg_vregs;
          Alcotest.test_case "scalar-ops" `Quick test_neg_scalar_ops;
          Alcotest.test_case "census" `Quick test_neg_census;
          Alcotest.test_case "effects" `Quick test_neg_effects;
          Alcotest.test_case "Family.certify gate" `Quick test_certify_rejects;
        ] );
    ]
