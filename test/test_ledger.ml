(* The run ledger: Exo_ledger.Ledger.

   The load-bearing contracts pinned here:

   1. Durability — an append is one O_APPEND write of one complete line
      under an advisory lock, so concurrent writers (domains here, CI
      jobs in the wild) interleave whole records, never bytes.

   2. Corruption tolerance — a line that does not parse (torn tail,
      hand-edit) is counted and skipped; every parseable record before
      and after it still loads. A load must never be fatal.

   3. Regression detection — the baseline window is the same-fingerprint
      history only, the noise bound is max(mad_k * MAD, min_rel * |med|,
      mad_k * within-run MAD), direction-aware, and Info metrics are
      never gated.

   Plus the JSON round-trip, the robust statistics, the rotating access
   sink, and the report document (attribution + ok verdict). *)

module L = Exo_ledger.Ledger

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let with_tmp f =
  let path = Filename.temp_file "exo-ledger-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".1") then Sys.remove (path ^ ".1"))
    (fun () -> f path)

(* --- JSON ------------------------------------------------------------------ *)

let test_json_parse () =
  let j =
    match
      L.Json.parse
        {|{"a": 1.5, "n": -3, "b": [true, null, "xA\t"], "o": {"d": 2}}|}
    with
    | Ok j -> j
    | Error e -> Alcotest.fail ("parse failed: " ^ e)
  in
  let num k = Option.bind (L.Json.member k j) L.Json.num in
  check_bool "float member" true (num "a" = Some 1.5);
  check_bool "negative int member" true (num "n" = Some (-3.0));
  (match Option.bind (L.Json.member "b" j) L.Json.list_ with
  | Some [ b; n; s ] ->
      check_bool "bool element" true (L.Json.bool_ b = Some true);
      check_bool "null element" true (n = L.Json.Null);
      check_bool "escapes decoded" true (L.Json.str s = Some "xA\t")
  | _ -> Alcotest.fail "array member lost its shape");
  check_bool "nested object" true
    (Option.bind (L.Json.member "o" j) (L.Json.member "d")
     |> Fun.flip Option.bind L.Json.num
    = Some 2.0);
  check_bool "trailing garbage rejected" true
    (match L.Json.parse "{} trailing" with Error _ -> true | Ok _ -> false);
  check_bool "truncated input rejected" true
    (match L.Json.parse {|{"a": [1, 2|} with Error _ -> true | Ok _ -> false)

let test_json_print_parse_roundtrip () =
  let j =
    L.Json.Obj
      [
        ("s", L.Json.Str "quote \" backslash \\ newline \n");
        ("i", L.Json.Num 42.0);
        ("f", L.Json.Num 1.25);
        ("a", L.Json.Arr [ L.Json.Bool false; L.Json.Null ]);
      ]
  in
  let s = L.Json.to_string j in
  check_bool "one line" true (not (String.contains s '\n'));
  check_bool "integral floats print bare" true (contains ~affix:"42" s);
  (match L.Json.parse s with
  | Ok j' -> check_bool "print/parse round-trip" true (j = j')
  | Error e -> Alcotest.fail ("reparse failed: " ^ e))

(* --- robust statistics ----------------------------------------------------- *)

let test_stats () =
  check_bool "median of empty is 0" true (L.Stats.median [] = 0.0);
  check_bool "median odd" true (L.Stats.median [ 3.0; 1.0; 2.0 ] = 2.0);
  check_bool "median even averages" true
    (L.Stats.median [ 4.0; 1.0; 2.0; 3.0 ] = 2.5);
  check_bool "mad of empty is 0" true (L.Stats.mad [] = 0.0);
  check_bool "mad of constants is 0" true (L.Stats.mad [ 5.0; 5.0; 5.0 ] = 0.0);
  (* samples 1..5: median 3, |x - 3| = [2;1;0;1;2], median of that = 1 *)
  check_bool "mad pins" true
    (L.Stats.mad [ 1.0; 2.0; 3.0; 4.0; 5.0 ] = 1.0)

let test_metric_of_samples () =
  let m = L.metric_of_samples ~unit_:"ms" L.Lower "t" [ 3.0; 1.0; 2.0 ] in
  check_bool "Lower keeps the min as headline" true (m.L.m_value = 1.0);
  check_bool "median recorded" true (m.L.m_median = 2.0);
  check_int "sample count" 3 m.L.m_n;
  let m = L.metric_of_samples L.Higher "g" [ 3.0; 1.0; 2.0 ] in
  check_bool "Higher keeps the max" true (m.L.m_value = 3.0);
  let m = L.metric_of_samples L.Info "i" [ 3.0; 1.0; 2.0 ] in
  check_bool "Info reports the median" true (m.L.m_value = 2.0)

(* --- records: round-trip, append, load ------------------------------------- *)

let record ?time ?(bench = "unit") v =
  L.record ?time ~flambda:false ~pool_jobs:2 ~bench
    [
      L.metric ~unit_:"x" L.Higher "m.gated" v;
      L.metric L.Info "m.info" 7.0;
    ]

let test_record_roundtrip () =
  let r = record ~time:1700000000.25 3.5 in
  check_int "schema version stamped" L.schema_version r.L.r_schema;
  match L.Json.parse (L.to_json r) with
  | Error e -> Alcotest.fail ("to_json does not reparse: " ^ e)
  | Ok j -> (
      match L.of_json j with
      | Some r' -> check_bool "to_json/of_json round-trip" true (r = r')
      | None -> Alcotest.fail "of_json rejected its own to_json")

let test_append_load () =
  with_tmp @@ fun path ->
  L.append ~path (record 1.0);
  L.append ~path (record 2.0);
  let records, skipped = L.load ~path in
  check_int "two records" 2 (List.length records);
  check_int "nothing skipped" 0 skipped;
  check_bool "file order preserved" true
    (List.map
       (fun (r : L.record) -> (List.hd r.L.r_metrics).L.m_value)
       records
    = [ 1.0; 2.0 ])

let test_corrupt_lines_skipped () =
  with_tmp @@ fun path ->
  L.append ~path (record 1.0);
  (* a hand-edit gone wrong in the middle, then a good record, then a
     torn final line (no trailing newline = interrupted write) *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema\": not json\n";
  close_out oc;
  L.append ~path (record 2.0);
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema\":1,\"time\":12";
  (* torn: no '\n' *)
  close_out oc;
  let records, skipped = L.load ~path in
  check_int "both good records survive" 2 (List.length records);
  check_int "corrupt middle + torn tail counted" 2 skipped;
  (* load is non-destructive: a later append then load still works *)
  L.append ~path (record 3.0);
  let records, _ = L.load ~path in
  (* the torn tail now has a record glued after it on the same line; that
     line stays corrupt, the fresh append is intact on its own line *)
  check_bool "appends after corruption still load" true
    (List.exists
       (fun (r : L.record) -> (List.hd r.L.r_metrics).L.m_value = 3.0)
       records)

let test_concurrent_append () =
  with_tmp @@ fun path ->
  let writers = 4 and per_writer = 25 in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              L.append ~path (record (float_of_int ((w * 1000) + i)))
            done))
  in
  List.iter Domain.join domains;
  let records, skipped = L.load ~path in
  check_int "every record intact, none torn" (writers * per_writer)
    (List.length records);
  check_int "no interleaved garbage" 0 skipped;
  (* every (writer, i) value present exactly once *)
  let values =
    List.map (fun (r : L.record) -> (List.hd r.L.r_metrics).L.m_value) records
  in
  let sorted = List.sort compare values in
  let expected =
    List.concat_map
      (fun w ->
        List.init per_writer (fun i -> float_of_int ((w * 1000) + i + 1)))
      [ 0; 1; 2; 3 ]
    |> List.sort compare
  in
  check_bool "no duplicated or lost records" true (sorted = expected)

(* --- regression detection --------------------------------------------------- *)

let test_regression_detection () =
  (* 5 stable baseline runs then a collapse: the Higher metric regresses *)
  let history = List.map record [ 100.0; 101.0; 99.0; 100.0; 100.5 ] in
  let good = L.check (history @ [ record 100.2 ]) in
  check_bool "steady run passes" true
    (List.for_all (fun (v : L.verdict) -> not v.L.v_regressed) good);
  let bad = L.check (history @ [ record 50.0 ]) in
  (match
     List.find_opt (fun (v : L.verdict) -> v.L.v_metric = "m.gated") bad
   with
  | Some v ->
      check_bool "collapse flagged" true v.L.v_regressed;
      check_int "baseline window size" 5 v.L.v_n_baseline
  | None -> Alcotest.fail "gated metric got no verdict");
  check_bool "Info metrics never gated" true
    (List.for_all (fun (v : L.verdict) -> v.L.v_metric <> "m.info") bad);
  (* direction-aware: a Higher metric going UP is fine *)
  let up = L.check (history @ [ record 200.0 ]) in
  check_bool "improvement is not a regression" true
    (List.for_all (fun (v : L.verdict) -> not v.L.v_regressed) up)

let test_fingerprint_filtering () =
  (* same bench, different pool width: not comparable history *)
  let other_host =
    L.record ~flambda:false ~pool_jobs:64 ~bench:"unit"
      [ L.metric ~unit_:"x" L.Higher "m.gated" 1000.0 ]
  in
  check_bool "fingerprints differ" true
    (L.fingerprint other_host <> L.fingerprint (record 100.0));
  let vs = L.check [ other_host; record 100.0 ] in
  (match
     List.find_opt (fun (v : L.verdict) -> v.L.v_metric = "m.gated") vs
   with
  | Some v ->
      check_int "cross-fingerprint history excluded" 0 v.L.v_n_baseline;
      check_bool "no comparable history = no regression" false v.L.v_regressed
  | None -> Alcotest.fail "gated metric got no verdict");
  (* distinct bench names never share a window either *)
  let vs =
    L.check [ record ~bench:"unit-smoke" 1000.0; record ~bench:"unit" 10.0 ]
  in
  check_bool "smoke and full benches do not mix" true
    (List.for_all (fun (v : L.verdict) -> v.L.v_n_baseline = 0) vs)

let test_noisy_run_not_flagged () =
  (* a current run that honestly reports huge within-run noise widens its
     own band: mad_k * current MAD dominates *)
  let noisy =
    L.record ~flambda:false ~pool_jobs:2 ~bench:"unit"
      [ L.metric_of_samples ~unit_:"x" L.Higher "m.gated"
          [ 80.0; 100.0; 120.0 ];
      ]
  in
  let history = List.map record [ 100.0; 100.0; 100.0 ] in
  let vs = L.check (history @ [ noisy ]) in
  check_bool "self-reported noise widens the band" true
    (List.for_all (fun (v : L.verdict) -> not v.L.v_regressed) vs)

(* --- the rotating sink ------------------------------------------------------ *)

let test_sink_rotation () =
  with_tmp @@ fun path ->
  Sys.remove path;
  let sink = L.Sink.create ~max_bytes:256 path in
  let line = String.make 63 'x' in
  for _ = 1 to 12 do
    L.Sink.write sink line
  done;
  check_bool "live file exists" true (Sys.file_exists path);
  check_bool "rotated file exists" true (Sys.file_exists (path ^ ".1"));
  let size p = (Unix.stat p).Unix.st_size in
  check_bool "live file under the cap + one line" true (size path <= 320);
  check_bool "rotation bounds total disk" true
    (size path + size (path ^ ".1") <= 2 * 320);
  (* every surviving line is whole *)
  let ic = open_in path in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let ls = lines [] in
  close_in ic;
  check_bool "no torn lines after rotation" true
    (List.for_all (fun l -> l = line) ls && ls <> [])

(* --- the report ------------------------------------------------------------- *)

let attr_record ~measured ~model =
  L.record ~flambda:false ~pool_jobs:2 ~bench:"perf-unit"
    [
      L.metric ~unit_:"GFLOPS" L.Higher "gemm.gflops" measured;
      L.metric ~unit_:"GFLOPS" L.Info "attr.measured_gflops" measured;
      L.metric ~unit_:"GFLOPS" L.Info "attr.model_gflops" model;
      L.metric L.Info "attr.dim" 1008.0;
      L.metric ~unit_:"MB" L.Info "attr.sim_dram_mb" 55.0;
      L.metric ~unit_:"s" L.Info "attr.phase.pack_a" 0.1;
      L.metric ~unit_:"s" L.Info "attr.phase.ukr" 0.8;
    ]

let test_report_document () =
  with_tmp @@ fun path ->
  L.append ~path (attr_record ~measured:3.0 ~model:36.0);
  L.append ~path (attr_record ~measured:3.1 ~model:36.0);
  let r = L.Report.build ~path (L.load ~path) in
  check_bool "clean report ok" true (L.Report.ok r);
  (match r.L.Report.rp_attribution with
  | Some a ->
      check_bool "efficiency = measured / model" true
        (Float.abs (a.L.Report.at_efficiency -. (3.1 /. 36.0)) < 1e-9);
      check_bool "dim picked up" true (a.L.Report.at_dim = Some 1008);
      check_bool "phases picked up" true
        (List.mem_assoc "ukr" a.L.Report.at_phases)
  | None -> Alcotest.fail "no attribution extracted");
  let js = L.Report.to_json r in
  check_bool "json carries measured" true
    (contains ~affix:"\"measured_gflops\"" js);
  check_bool "json carries model" true (contains ~affix:"\"model_gflops\"" js);
  check_bool "json carries dram" true (contains ~affix:"\"sim_dram_mb\"" js);
  check_bool "json says ok" true (contains ~affix:"\"ok\":true" js);
  let txt = L.Report.render r in
  check_bool "render shows the attribution table" true
    (contains ~affix:"attribution" txt);
  (* an efficiency collapse below the gate flips ok without any metric
     regression *)
  L.append ~path (attr_record ~measured:0.1 ~model:36.0);
  let r =
    L.Report.build ~min_rel:10.0 ~mad_k:1000.0 ~path (L.load ~path)
  in
  check_bool "efficiency below gate flips ok" false (L.Report.efficiency_ok r)

let () =
  Alcotest.run "ledger"
    [
      ( "json",
        [
          Alcotest.test_case "parse shapes and escapes" `Quick test_json_parse;
          Alcotest.test_case "print/parse round-trip" `Quick
            test_json_print_parse_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "median and mad pins" `Quick test_stats;
          Alcotest.test_case "metric_of_samples directions" `Quick
            test_metric_of_samples;
        ] );
      ( "durability",
        [
          Alcotest.test_case "record JSON round-trip" `Quick
            test_record_roundtrip;
          Alcotest.test_case "append then load in order" `Quick test_append_load;
          Alcotest.test_case "corrupt and torn lines skipped" `Quick
            test_corrupt_lines_skipped;
          Alcotest.test_case "4 concurrent writer domains" `Quick
            test_concurrent_append;
        ] );
      ( "regression",
        [
          Alcotest.test_case "collapse flagged, improvement not" `Quick
            test_regression_detection;
          Alcotest.test_case "host fingerprint scopes the baseline" `Quick
            test_fingerprint_filtering;
          Alcotest.test_case "within-run noise widens the band" `Quick
            test_noisy_run_not_flagged;
        ] );
      ( "sink",
        [ Alcotest.test_case "size rotation" `Quick test_sink_rotation ] );
      ( "report",
        [
          Alcotest.test_case "attribution and ok verdict" `Quick
            test_report_document;
        ] );
    ]
