(* The observability layer: Exo_obs.Obs.

   Three contracts are load-bearing and pinned here:

   1. Determinism — the merged trace of a pure workload run through
      Exo_par.Pool is identical at every pool width, up to span ids and
      (monotonic, per-domain) timestamps. Everything that makes traces
      diffable across `-j` settings rides on this (qcheck property).

   2. Cost — with tracing disabled the span/counter/histogram hot paths
      are a single atomic branch and allocate NOTHING. The <2% perf gate
      on bench/main.exe rides on this (Gc.minor_words test).

   3. Honesty — a span left open at drain time is reported as unclosed,
      never silently dropped.

   Plus the provenance collector (the sidecar every generated kernel
   ships) and the CLI exit-code contract of bin/ukrgen.exe. *)

module Obs = Exo_obs.Obs
module Pool = Exo_par.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* Every test owns the global collector: start from a clean, disabled
   state and leave one behind. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* --- determinism across pool widths -------------------------------------- *)

(* What "identical up to span ids and timestamps" means concretely: keep
   (epoch, task, name, depth, args, kind tag), drop (tid, seq, t0, dur). *)
type norm = int * int * string * int * (string * string) list * string

let normalize (tr : Obs.trace) : norm list * (string * int) list =
  let ev (e : Obs.event) : norm =
    let k =
      match e.Obs.e_kind with
      | Obs.KComplete _ -> "complete"
      | Obs.KInstant -> "instant"
      | Obs.KUnclosed -> "unclosed"
    in
    (e.Obs.e_epoch, e.Obs.e_task, e.Obs.e_name, e.Obs.e_depth, e.Obs.e_args, k)
  in
  (List.map ev tr.Obs.events, tr.Obs.counters)

(* A deterministic multi-span workload: item [x] opens a task span, then
   [x mod 3] nested inner spans each with an instant and a counter bump. *)
let ticks = Obs.counter "test.ticks"

let work x =
  Obs.with_span ~args:[ ("x", string_of_int x) ] "obs-test.task" (fun () ->
      for i = 1 to x mod 3 do
        Obs.with_span "obs-test.inner" (fun () ->
            Obs.instant ~args:[ ("i", string_of_int i) ] "obs-test.tick";
            Obs.incr ticks)
      done;
      x * 2)

let run_at_width xs jobs =
  fresh ();
  Obs.enable ();
  let pool = Pool.create ~jobs () in
  let out = Pool.map pool work xs in
  Obs.disable ();
  let tr = Obs.drain () in
  (out, normalize tr)

let prop_width_invariant =
  QCheck.Test.make ~count:30 ~name:"merged trace identical at widths 1/2/4"
    QCheck.(list_of_size Gen.(int_range 0 12) small_nat)
    (fun xs ->
      let o1, t1 = run_at_width xs 1 in
      let o2, t2 = run_at_width xs 2 in
      let o4, t4 = run_at_width xs 4 in
      o1 = o2 && o2 = o4 && t1 = t2 && t2 = t4)

let test_trace_shape () =
  (* sanity on the normalized form itself: nesting depths and task ids *)
  let _, (evs, counters) = run_at_width [ 5; 4 ] 2 in
  let tasks =
    List.filter (fun (_, _, n, _, _, _) -> n = "obs-test.task") evs
  in
  check_int "one task span per item" 2 (List.length tasks);
  List.iteri
    (fun i (_, task, _, depth, _, _) ->
      check_int "task spans carry their item index" i task;
      check_int "task span at depth 0" 0 depth)
    tasks;
  let inners =
    List.filter (fun (_, _, n, _, _, _) -> n = "obs-test.inner") evs
  in
  check_int "5 mod 3 + 4 mod 3 inner spans" 3 (List.length inners);
  List.iter
    (fun (_, _, _, depth, _, _) -> check_int "inner nested at depth 1" 1 depth)
    inners;
  check_bool "counter drained" true
    (List.mem_assoc "test.ticks" counters
    && List.assoc "test.ticks" counters = 3)

(* --- disabled hot path allocates nothing ---------------------------------- *)

let test_disabled_no_alloc () =
  fresh ();
  check_bool "tracing disabled" false (Obs.enabled ());
  let c = Obs.counter "test.noalloc" and h = Obs.histogram "test.noalloc_h" in
  let hot () =
    for i = 1 to 10_000 do
      let sp = Obs.begin_span "hot" in
      Obs.instant "hot.instant";
      Obs.incr c;
      Obs.add c 3;
      Obs.observe h i;
      Obs.end_span sp
    done
  in
  hot ();
  (* warm-up: any one-time lazy setup *)
  let w0 = Gc.minor_words () in
  hot ();
  let dw = Gc.minor_words () -. w0 in
  check_bool
    (Fmt.str "10k disabled span+metric rounds allocated %.0f words" dw)
    true (dw <= 8.0);
  check_int "disabled mutations dropped" 0 (Obs.counter_value c)

(* --- unclosed spans are reported, not dropped ----------------------------- *)

let test_unclosed_reported () =
  fresh ();
  Obs.enable ();
  let _leak = Obs.begin_span "obs-test.leaky" in
  let closed = Obs.begin_span "obs-test.closed" in
  Obs.end_span closed;
  Obs.disable ();
  let tr = Obs.drain () in
  check_bool "unclosed list names the leak" true
    (List.exists (fun (n, _) -> n = "obs-test.leaky") tr.Obs.unclosed);
  check_bool "leak surfaces as a KUnclosed event" true
    (List.exists
       (fun (e : Obs.event) ->
         e.Obs.e_name = "obs-test.leaky" && e.Obs.e_kind = Obs.KUnclosed)
       tr.Obs.events);
  check_bool "the closed sibling is still a complete span" true
    (List.exists
       (fun (e : Obs.event) ->
         e.Obs.e_name = "obs-test.closed"
         && match e.Obs.e_kind with Obs.KComplete _ -> true | _ -> false)
       tr.Obs.events);
  (* the exporter flags it too *)
  let report = Obs.Export.text_report tr in
  check_bool "text report has an UNCLOSED section" true
    (contains ~affix:"obs-test.leaky" report)

(* --- counters and histograms ---------------------------------------------- *)

let test_metrics () =
  fresh ();
  Obs.enable ();
  let c = Obs.counter "test.metric_c" in
  Obs.incr c;
  Obs.add c 41;
  check_int "counter accumulates" 42 (Obs.counter_value c);
  check_bool "same name, same cell" true
    (Obs.counter_value (Obs.counter "test.metric_c") = 42);
  let h = Obs.histogram "test.metric_h" in
  List.iter (Obs.observe h) [ 1; 2; 4; 100 ];
  Obs.disable ();
  let tr = Obs.drain () in
  check_int "counter snapshot" 42 (List.assoc "test.metric_c" tr.Obs.counters);
  let hs = List.assoc "test.metric_h" tr.Obs.histograms in
  check_int "histogram count" 4 hs.Obs.h_count;
  check_int "histogram sum" 107 hs.Obs.h_sum;
  Obs.reset ();
  check_int "reset zeroes counters" 0 (Obs.counter_value c)

(* --- histogram snapshots and quantile estimation -------------------------- *)

(* The log2 bucket that owns a value: 0 for 0, else its bit length. *)
let bucket_of v =
  let rec go b x = if x = 0 then b else go (b + 1) (x lsr 1) in
  go 0 v

let test_bucket_bounds () =
  check_bool "bucket 0 holds only the value 0" true (Obs.bucket_bounds 0 = (0, 0));
  check_bool "bucket 1 = [1,1]" true (Obs.bucket_bounds 1 = (1, 1));
  check_bool "bucket 2 = [2,3]" true (Obs.bucket_bounds 2 = (2, 3));
  check_bool "bucket 7 = [64,127]" true (Obs.bucket_bounds 7 = (64, 127));
  check_bool "top bucket clamps at max_int" true
    (snd (Obs.bucket_bounds 62) = max_int);
  (* bounds partition: hi of i is lo of i+1 minus one *)
  for i = 1 to 60 do
    let _, hi = Obs.bucket_bounds i and lo', _ = Obs.bucket_bounds (i + 1) in
    check_bool "buckets tile the naturals" true (hi + 1 = lo')
  done

let test_quantile_pins () =
  fresh ();
  let h = Obs.histogram "test.quantile_pins" in
  Obs.reset_histogram h;
  (* observe_always records with tracing off — the serve latency path *)
  check_bool "tracing stays off" false (Obs.enabled ());
  for _ = 1 to 100 do
    Obs.observe_always h 10
  done;
  let s = Obs.snapshot h in
  check_int "always-on count" 100 s.Obs.h_count;
  check_int "always-on sum" 1000 s.Obs.h_sum;
  let inside q =
    let v = Obs.quantile s q in
    v >= 8.0 && v <= 15.0
  in
  check_bool "p50 inside the owning bucket [8,15]" true (inside 0.5);
  check_bool "p95 inside the owning bucket" true (inside 0.95);
  check_bool "p99 inside the owning bucket" true (inside 0.99);
  (* bimodal latencies: 90 fast (~100us), 10 slow (~100ms) *)
  Obs.reset_histogram h;
  for _ = 1 to 90 do
    Obs.observe_always h 100
  done;
  for _ = 1 to 10 do
    Obs.observe_always h 100_000
  done;
  let s = Obs.snapshot h in
  let p50 = Obs.quantile s 0.5 and p95 = Obs.quantile s 0.95 in
  check_bool "p50 lands in the fast mode [64,127]" true
    (p50 >= 64.0 && p50 <= 127.0);
  check_bool "p95 lands in the slow mode [65536,131071]" true
    (p95 >= 65536.0 && p95 <= 131071.0);
  Obs.reset_histogram h;
  check_int "reset_histogram zeroes in place" 0 (Obs.snapshot h).Obs.h_count;
  check_bool "empty histogram quantile is 0" true
    (Obs.quantile (Obs.snapshot h) 0.5 = 0.0)

(* the estimator contract: the estimate always lands inside the bucket
   that holds the true rank-based quantile, i.e. within one bucket of the
   exact sample quantile *)
let prop_quantile_brackets =
  QCheck.Test.make ~count:300
    ~name:"quantile estimate lands in the true quantile's bucket"
    QCheck.(
      pair (list_of_size Gen.(int_range 1 60) (int_bound 100_000)) (int_bound 99))
    (fun (xs, qi) ->
      let q = float_of_int (qi + 1) /. 100.0 in
      let h = Obs.histogram "test.quantile_prop" in
      Obs.reset_histogram h;
      List.iter (Obs.observe_always h) xs;
      let est = Obs.quantile (Obs.snapshot h) q in
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let true_q = List.nth sorted (rank - 1) in
      let lo, hi = Obs.bucket_bounds (bucket_of true_q) in
      est >= float_of_int lo && est <= float_of_int hi)

(* --- exporters ------------------------------------------------------------ *)

let test_chrome_json () =
  fresh ();
  Obs.enable ();
  Obs.with_span ~args:[ ("k", "v") ] "obs-test.outer" (fun () ->
      Obs.instant "obs-test.mark");
  Obs.disable ();
  let js = Obs.Export.chrome_json (Obs.drain ()) in
  let has affix = contains ~affix js in
  check_bool "top-level traceEvents array" true (has "\"traceEvents\"");
  check_bool "complete event" true (has "\"ph\":\"X\"");
  check_bool "instant event" true (has "\"ph\":\"i\"");
  check_bool "span name present" true (has "\"obs-test.outer\"");
  check_bool "args preserved" true (has "\"k\":\"v\"")

(* --- provenance ----------------------------------------------------------- *)

let prim ?pattern ?(ok = true) op =
  Obs.Provenance.Prim
    {
      op;
      pattern;
      nodes_before = 10;
      nodes_after = 12;
      cert_us = 1.5;
      ok;
      detail = (if ok then None else Some "boom");
    }

let test_provenance_collect () =
  fresh ();
  check_bool "no collector by default" false (Obs.Provenance.collecting ());
  Obs.Provenance.record (prim "dropped");
  (* no-op, no collector *)
  let (), entries =
    Obs.Provenance.collect (fun () ->
        Obs.Provenance.mark_step ~figure:"Fig. 6" "divide_loop: vectorize i";
        Obs.Provenance.record (prim ~pattern:"for i in _: _" "divide_loop");
        Obs.Provenance.record (prim "replace");
        (* nested collectors do not steal from the outer one *)
        let (), inner = Obs.Provenance.collect (fun () ->
            Obs.Provenance.record (prim "inner_only"))
        in
        check_int "inner collector sees its entry" 1
          (Obs.Provenance.prim_count inner))
  in
  check_int "steps" 1 (Obs.Provenance.step_count entries);
  (* the nested collector's entry also lands in the outer log (nesting
     appends to every active cell) *)
  check_int "prims" 3 (Obs.Provenance.prim_count entries);
  check_bool "all ok" true (Obs.Provenance.all_ok entries);
  check_bool "failure flips all_ok" false
    (Obs.Provenance.all_ok [ prim ~ok:false "bad" ])

let test_provenance_json () =
  let entries =
    [
      Obs.Provenance.Step { title = "divide_loop: vectorize i"; figure = Some "Fig. 6" };
      prim ~pattern:"for i in _: _" "divide_loop";
      prim "replace";
    ]
  in
  let js =
    Obs.Provenance.to_json ~kernel:"uk_test" ~kit:"neon-f32" ~style:"packed"
      ~declared_steps:1 entries
  in
  let has affix = contains ~affix js in
  (* exact grep-able shapes CI relies on *)
  check_bool "step kind line" true (has "\"kind\": \"step\"");
  check_bool "prim kind line" true (has "\"kind\": \"prim\"");
  check_bool "declared_steps header" true (has "\"declared_steps\": 1");
  check_bool "step_count header" true (has "\"step_count\": 1");
  check_bool "cursor pattern recorded" true (has "for i in _: _");
  check_bool "certificates_ok" true (has "\"certificates_ok\": true");
  let lines = Obs.Provenance.header_lines entries in
  check_bool "header summary line" true
    (List.exists
       (fun l -> contains ~affix:"1 schedule steps" l)
       lines)

let test_family_provenance () =
  (* the real producer: every generated kernel carries a log whose step
     count equals the kit's declaration (generate enforces this; we pin
     the observable) *)
  let module F = Exo_ukr_gen.Family in
  let k = F.generate ~kit:Exo_ukr_gen.Kits.neon_f32 ~mr:8 ~nr:12 () in
  check_bool "provenance non-empty" true (k.F.provenance <> []);
  check_int "recorded steps = declared"
    (F.declared_steps k.F.kit k.F.style)
    (Obs.Provenance.step_count k.F.provenance);
  check_bool "every certificate passed" true
    (Obs.Provenance.all_ok k.F.provenance);
  check_bool "bounds certificate in the log" true
    (List.exists
       (function
         | Obs.Provenance.Prim { op = "bounds_certificate"; ok; _ } -> ok
         | _ -> false)
       k.F.provenance)

(* --- the ukrgen CLI exit-code contract ------------------------------------ *)

(* cmdliner's term-evaluation errors exit with 124; success with 0. Pin
   both so an unknown subcommand or flag can never silently "succeed"
   in a script or CI pipeline. *)
let ukrgen = "../bin/ukrgen.exe"

let run_cli args =
  Sys.command (Filename.quote_command ukrgen args ^ " >/dev/null 2>&1")

let test_cli_exit_codes () =
  check_int "unknown subcommand exits 124" 124 (run_cli [ "frobnicate" ]);
  check_int "unknown flag exits 124" 124
    (run_cli [ "generate"; "--no-such-flag" ]);
  check_int "bad kit value exits 124" 124
    (run_cli [ "generate"; "--kit"; "bogus"; "--mr"; "8"; "--nr"; "12" ]);
  check_int "missing positional exits 124" 124 (run_cli [ "trace" ]);
  check_int "--help exits 0" 0 (run_cli [ "--help" ]);
  check_int "a good invocation exits 0" 0
    (run_cli [ "generate"; "--kit"; "neon-f32"; "--mr"; "8"; "--nr"; "12" ]);
  (* a [lint --tiers] proof failure has its own exit code, distinct from
     both the generic CLI error (123) and cmdliner's usage errors (124) *)
  check_int "lint --tiers failure exits 3" 3
    (run_cli [ "lint"; "--tiers"; "--selftest-fail" ]);
  check_int "lint --tiers success exits 0" 0
    (run_cli
       [ "lint"; "--tiers"; "--table-mr"; "2"; "--table-nr"; "2"; "--jobs"; "1" ])

(* [report --check] failing the regression/efficiency gate exits 4 —
   distinct from lint's 3, the generic 123, and cmdliner's 124 — so CI
   can tell "perf regressed" apart from "tool broke" *)
let test_report_exit_codes () =
  let module L = Exo_ledger.Ledger in
  let path = Filename.temp_file "ukrgen_report" ".jsonl" in
  let steady v =
    L.record ~pool_jobs:1 ~bench:"unit" [ L.metric L.Higher "unit.gflops" v ]
  in
  L.append ~path (steady 100.0);
  L.append ~path (steady 101.0);
  check_int "clean ledger: report --check exits 0" 0
    (run_cli [ "report"; "--ledger"; path; "--check" ]);
  L.append ~path (steady 10.0);
  check_int "regression: report --check exits 4" 4
    (run_cli [ "report"; "--ledger"; path; "--check" ]);
  check_int "same regression without --check still exits 0" 0
    (run_cli [ "report"; "--ledger"; path ]);
  Sys.remove path;
  check_int "missing ledger exits 123" 123
    (run_cli [ "report"; "--ledger"; path; "--check" ])

let () =
  fresh ();
  Alcotest.run "obs"
    [
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_width_invariant;
          Alcotest.test_case "trace shape across a pool" `Quick
            test_trace_shape;
        ] );
      ( "cost",
        [
          Alcotest.test_case "disabled hot path allocates nothing" `Quick
            test_disabled_no_alloc;
        ] );
      ( "honesty",
        [
          Alcotest.test_case "unclosed span reported, not dropped" `Quick
            test_unclosed_reported;
        ] );
      ( "metrics",
        [ Alcotest.test_case "counters and histograms" `Quick test_metrics ] );
      ( "quantiles",
        [
          Alcotest.test_case "log2 bucket bounds" `Quick test_bucket_bounds;
          Alcotest.test_case "pinned p50/p95/p99 units" `Quick
            test_quantile_pins;
          QCheck_alcotest.to_alcotest prop_quantile_brackets;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace_event JSON" `Quick test_chrome_json ]
      );
      ( "provenance",
        [
          Alcotest.test_case "scoped collection" `Quick test_provenance_collect;
          Alcotest.test_case "sidecar JSON shapes" `Quick test_provenance_json;
          Alcotest.test_case "Family.generate carries its schedule" `Quick
            test_family_provenance;
        ] );
      ( "cli",
        [
          Alcotest.test_case "ukrgen exit codes" `Quick test_cli_exit_codes;
          Alcotest.test_case "report exit codes" `Quick test_report_exit_codes;
        ] );
    ]
