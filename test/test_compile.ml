(* The compiled execution engine. The central property is that the closure
   compiler is observationally identical to the tree-walking interpreter —
   exact (bit-identical) buffers on random programs, on randomly *scheduled*
   programs, and on every generated micro-kernel of the paper's family —
   and that it enforces the same runtime contracts (preconditions, bounds,
   dtype rounding). *)

open Exo_ir
open Ir
open Builder
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile
module Sched = Exo_sched.Sched
module Kits = Exo_ukr_gen.Kits
module Family = Exo_ukr_gen.Family

(* --- random program generator (as in test_sched_random) ----------------- *)

let dim0 = 6
let dim1 = 8

type gctx = { src : Sym.t; dst : Sym.t; loops : (Sym.t * int) list }

let gen_index ctx ~(bound : int) : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let candidates =
    List.filter (fun (_, ext) -> ext <= bound) ctx.loops
    |> List.map (fun (v, ext) ->
           if ext = bound then return (Var v)
           else map (fun c -> Binop (Add, Var v, Int c)) (int_range 0 (bound - ext)))
  in
  oneof (map (fun c -> Int c) (int_range 0 (bound - 1)) :: candidates)

let gen_rhs ctx : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i0 = gen_index ctx ~bound:dim0 in
  let* i1 = gen_index ctx ~bound:dim1 in
  let read = Read (ctx.src, [ i0; i1 ]) in
  oneofl
    [
      read;
      Binop (Add, read, Float 1.0);
      Binop (Mul, read, Float 2.0);
      Binop (Sub, Float 0.5, read);
      Float 3.0;
    ]

let gen_leaf ctx : stmt QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i0 = gen_index ctx ~bound:dim0 in
  let* i1 = gen_index ctx ~bound:dim1 in
  let* e = gen_rhs ctx in
  oneofl [ SAssign (ctx.dst, [ i0; i1 ], e); SReduce (ctx.dst, [ i0; i1 ], e) ]

let loop_names = [| "i"; "j"; "p"; "q" |]

let rec gen_body ctx ~(depth : int) : stmt list QCheck2.Gen.t =
  let open QCheck2.Gen in
  if depth = 0 then map (fun s -> [ s ]) (gen_leaf ctx)
  else
    let* n_stmts = int_range 1 2 in
    list_repeat n_stmts
      (let* make_loop = bool in
       if make_loop then
         let* ext = oneofl [ 2; 3; 4; 6 ] in
         let v = Sym.fresh loop_names.(depth mod Array.length loop_names) in
         let ctx' = { ctx with loops = (v, ext) :: ctx.loops } in
         let* inner = gen_body ctx' ~depth:(depth - 1) in
         return (SFor (v, Int 0, Int ext, inner))
       else gen_leaf ctx)

let gen_proc : proc QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let ctx = { src; dst; loops = [] } in
  let* body = gen_body ctx ~depth in
  let p =
    mk_proc ~name:"rand"
      ~args:
        [
          tensor_arg src Dtype.F32 [ Int dim0; Int dim1 ];
          tensor_arg dst Dtype.F32 [ Int dim0; Int dim1 ];
        ]
      body
  in
  Exo_check.Wellformed.check_proc p;
  return p

(* --- equivalence oracle: run both engines on identical inputs ------------ *)

let mk_inputs ~(seed : int) =
  let st = Random.State.make [| seed |] in
  let mk () =
    let b = B.create ~init:0.0 Dtype.F32 [ dim0; dim1 ] in
    B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
    b
  in
  let src = mk () in
  let dst = mk () in
  (src, dst)

(** Bit-identical output buffers for interpreted vs compiled execution. *)
let engines_agree (p : proc) : bool =
  let ck = C.compile p in
  List.for_all
    (fun seed ->
      let s1, d1 = mk_inputs ~seed in
      let s2, d2 = mk_inputs ~seed in
      I.run p [ I.VBuf s1; I.VBuf d1 ];
      C.run ck [ I.VBuf s2; I.VBuf d2 ];
      B.equal d1 d2 && B.equal s1 s2)
    [ 1; 2; 3 ]

let prop_compiled_equals_interpreted =
  QCheck2.Test.make
    ~name:"compiled ≡ interpreted (exact buffers) on random programs" ~count:200
    gen_proc engines_agree

(* The issue's headline property: equivalence must also hold on *scheduled*
   procs — programs that went through the rewrite primitives (divided /
   unrolled / reordered loops, the shapes the generator emits). *)

let loop_names_of (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (function SFor (v, _, _, _) -> acc := Sym.name v :: !acc | _ -> ())
    p.p_body;
  List.sort_uniq compare !acc

let prop_compiled_equals_interpreted_scheduled =
  QCheck2.Test.make
    ~name:"compiled ≡ interpreted on random *scheduled* programs" ~count:150
    QCheck2.Gen.(pair gen_proc (int_range 0 1000))
    (fun (p, salt) ->
      let p' =
        match loop_names_of p with
        | [] -> p
        | loops -> (
            let v = List.nth loops (salt mod List.length loops) in
            let xform () =
              match salt mod 3 with
              | 0 ->
                  let q = 2 + (salt mod 3) in
                  let tail = if salt mod 2 = 0 then Sched.Perfect else Sched.Cut in
                  Sched.divide_loop p v q (v ^ "t", v ^ "tt") ~tail
              | 1 -> Sched.unroll_loop p v
              | _ -> (
                  match loops with
                  | w :: _ when w <> v -> Sched.reorder_loops p (v ^ " " ^ w)
                  | _ -> Sched.unroll_loop p v)
            in
            match xform () with p' -> p' | exception Sched.Sched_error _ -> p)
      in
      engines_agree p')

(* --- the generated family: every paper shape, both engines --------------- *)

(* Run one generated kernel — proc signature (KC, alpha, Ac, Bc, beta, C) —
   through both engines on inputs regenerated from the same seed, and return
   the two C tiles. *)
let run_kernel_pair ~(kit : Kits.t) ~mr ~nr ~kc ~seed =
  let proc = (Exo_blis.Registry.exo_kernel ~kit ~mr ~nr ()).Family.proc in
  let ck = Exo_blis.Registry.exo_compiled ~kit ~mr ~nr () in
  let one = B.of_array kit.Kits.dt [ 1 ] [| 1.0 |] in
  let run engine =
    let st = Random.State.make [| seed; mr; nr |] in
    let mk dims =
      let b = B.create ~init:0.0 kit.Kits.dt dims in
      B.fill b (fun _ -> float_of_int (Random.State.int st 7 - 3));
      b
    in
    let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] and c = mk [ nr; mr ] in
    engine [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c ];
    c
  in
  (run (I.run proc), run (C.run ck))

let test_family_kernels_agree () =
  List.iter
    (fun (mr, nr) ->
      let c1, c2 = run_kernel_pair ~kit:Kits.neon_f32 ~mr ~nr ~kc:24 ~seed:7 in
      Alcotest.(check bool)
        (Fmt.str "%dx%d f32 kernel: compiled ≡ interpreted" mr nr)
        true (B.equal c1 c2))
    Family.paper_shapes

let test_family_kernels_agree_f16 () =
  List.iter
    (fun (mr, nr) ->
      let c1, c2 = run_kernel_pair ~kit:Kits.neon_f16 ~mr ~nr ~kc:16 ~seed:9 in
      Alcotest.(check bool)
        (Fmt.str "%dx%d f16 kernel: compiled ≡ interpreted" mr nr)
        true (B.equal c1 c2))
    [ (8, 8); (8, 4); (16, 8); (1, 8) ]

(* --- the specialized micro-kernel tier (to_ukr) -------------------------- *)

(* Run one generated kernel through all three engines — tree-walking
   interpreter, general closure engine, and the specialized to_ukr tape —
   on inputs regenerated from the same seed. The engines take offset
   buffer views; the ukr_fn takes raw arrays plus panel offsets. *)
let run_ukr_triple ~(kit : Kits.t) ~mr ~nr ~kc ~ao ~bo ~seed =
  let proc = (Exo_blis.Registry.exo_kernel ~kit ~mr ~nr ()).Family.proc in
  let ck = C.compile proc in
  let uk =
    match C.to_ukr proc with
    | Some (u, _) -> u
    | None -> Alcotest.failf "to_ukr refused %s %dx%d" kit.Kits.name mr nr
  in
  let one = B.of_array kit.Kits.dt [ 1 ] [| 1.0 |] in
  let mk_arrays () =
    let st = Random.State.make [| seed; mr; nr; kc; ao; bo |] in
    let mk n =
      Array.init (max 1 n) (fun _ -> float_of_int (Random.State.int st 7 - 3))
    in
    (mk (ao + (kc * mr)), mk (bo + (kc * nr)), mk (nr * mr))
  in
  let view data dims offset =
    let dims = Array.of_list dims in
    let n = Array.length dims in
    let strides = Array.make n 1 in
    for i = n - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * dims.(i + 1)
    done;
    { B.data; dtype = kit.Kits.dt; dims; strides; offset }
  in
  let via_engine run =
    let ac, bc, c = mk_arrays () in
    run
      [
        I.VInt kc;
        I.VBuf one;
        I.VBuf (view ac [ kc; mr ] ao);
        I.VBuf (view bc [ kc; nr ] bo);
        I.VBuf one;
        I.VBuf (view c [ nr; mr ] 0);
      ];
    c
  in
  let c_interp = via_engine (I.run proc) in
  let c_closure = via_engine (C.run ck) in
  let ac, bc, c_fast = mk_arrays () in
  uk ~kc ~ac ~ao ~bc ~bo ~c:c_fast;
  (c_interp, c_closure, c_fast)

let arrays_bit_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let check_ukr_triple ~kit ~mr ~nr ~kc ~ao ~bo ~seed =
  let ci, cc, cf = run_ukr_triple ~kit ~mr ~nr ~kc ~ao ~bo ~seed in
  arrays_bit_equal ci cc && arrays_bit_equal ci cf

let test_to_ukr_family_f32 () =
  List.iter
    (fun (mr, nr) ->
      Alcotest.(check bool)
        (Fmt.str "%dx%d f32: to_ukr ≡ closure ≡ interp" mr nr)
        true
        (check_ukr_triple ~kit:Kits.neon_f32 ~mr ~nr ~kc:24 ~ao:0 ~bo:0 ~seed:11))
    Family.paper_shapes

let test_to_ukr_family_f16 () =
  List.iter
    (fun (mr, nr) ->
      Alcotest.(check bool)
        (Fmt.str "%dx%d f16: to_ukr ≡ closure ≡ interp" mr nr)
        true
        (check_ukr_triple ~kit:Kits.neon_f16 ~mr ~nr ~kc:16 ~ao:8 ~bo:4 ~seed:3))
    [ (8, 8); (8, 4); (16, 8); (1, 8) ]

let test_to_ukr_all_kits () =
  (* one shape per kit: covers Packed, PackedBcast, Row and Scalar styles
     plus the i32 rounding path *)
  List.iter
    (fun (kit : Kits.t) ->
      Alcotest.(check bool)
        (Fmt.str "%s 8x12: to_ukr ≡ closure ≡ interp" kit.Kits.name)
        true
        (check_ukr_triple ~kit ~mr:8 ~nr:12 ~kc:9 ~ao:3 ~bo:5 ~seed:17))
    Kits.all

let test_to_ukr_kc_zero () =
  (* kc = 0 still runs the C round-trip through register memory *)
  Alcotest.(check bool)
    "kc=0: to_ukr ≡ closure ≡ interp" true
    (check_ukr_triple ~kit:Kits.neon_f32 ~mr:8 ~nr:12 ~kc:0 ~ao:0 ~bo:0 ~seed:5)

let test_to_ukr_short_array_raises () =
  (* a call whose panels don't cover kc must divert to the general engine
     and raise exactly like the interpreter (no unsafe access) *)
  let proc = (Exo_blis.Registry.exo_kernel ~kit:Kits.neon_f32 ~mr:8 ~nr:12 ()).Family.proc in
  let uk = fst (Option.get (C.to_ukr proc)) in
  let c = Array.make (12 * 8) 0.0 in
  Alcotest.(check bool) "short Ac raises" true
    (try
       uk ~kc:4 ~ac:(Array.make 8 1.0) ~ao:0 ~bc:(Array.make (4 * 12) 1.0)
         ~bo:0 ~c;
       false
     with
    | Exo_interp.Buffer.Bounds _ | I.Runtime_error _ | Invalid_argument _ ->
        true)

let prop_to_ukr_equiv =
  QCheck2.Test.make ~name:"to_ukr ≡ closure ≡ interp (random kc/offsets/seeds)"
    ~count:120
    QCheck2.Gen.(
      quad
        (oneofl Family.paper_shapes)
        (int_range 0 33) (pair (int_range 0 5) (int_range 0 7)) (int_range 0 1000))
    (fun ((mr, nr), kc, (ao, bo), seed) ->
      check_ukr_triple ~kit:Kits.neon_f32 ~mr ~nr ~kc ~ao ~bo ~seed)

(* --- runtime contracts --------------------------------------------------- *)

let test_compiled_precondition_toplevel () =
  let n = Sym.fresh "N" and b = Sym.fresh "b" in
  let p =
    mk_proc ~name:"t"
      ~preds:[ ge (var n) (int 4) ]
      ~args:[ size_arg n; tensor_arg b Dtype.F32 [ var n ] ]
      []
  in
  let ck = C.compile p in
  let buf = B.create ~init:0.0 Dtype.F32 [ 2 ] in
  Alcotest.(check bool) "violated precondition raises" true
    (try
       C.run ck [ I.VInt 2; I.VBuf buf ];
       false
     with I.Runtime_error _ -> true)

let test_compiled_rejects_bad_stride () =
  (* neon_vld requires unit-stride operands; a column view strides by the
     row length and must be rejected by the compiled prologue too *)
  let ck = C.compile Exo_isa.Neon.vld_4xf32 in
  let dst = B.create ~init:0.0 Dtype.F32 [ 4 ] in
  let src2 = B.create ~init:1.0 Dtype.F32 [ 4; 8 ] in
  let strided = B.view src2 [ `Iv (0, 4); `Pt 0 ] in
  Alcotest.(check int) "view is strided" 8 (B.last_stride strided);
  Alcotest.(check bool) "strided src rejected" true
    (try
       C.run ck [ I.VBuf dst; I.VBuf strided ];
       false
     with I.Runtime_error _ -> true);
  (* and the contiguous case still runs *)
  let src = B.of_array Dtype.F32 [ 4 ] [| 5.0; 6.0; 7.0; 8.0 |] in
  C.run ck [ I.VBuf dst; I.VBuf src ];
  Alcotest.(check (float 0.0)) "contiguous load runs" 8.0 (B.get dst [| 3 |])

let test_compiled_rejects_bad_lane () =
  (* vfmla's lane selector is asserted to be in [0, lanes) *)
  let ck = C.compile Exo_isa.Neon.vfmla_4xf32_4xf32 in
  let mk v = B.create ~init:v Dtype.F32 [ 4 ] in
  let dstb = mk 0.0 and lhs = mk 1.0 and rhs = mk 2.0 in
  Alcotest.(check bool) "lane 4 of 4 rejected" true
    (try
       C.run ck [ I.VBuf dstb; I.VBuf lhs; I.VBuf rhs; I.VInt 4 ];
       false
     with I.Runtime_error _ -> true);
  C.run ck [ I.VBuf dstb; I.VBuf lhs; I.VBuf rhs; I.VInt 2 ];
  Alcotest.(check (float 0.0)) "lane 2 accepted" 2.0 (B.get dstb [| 0 |])

let test_compiled_division_by_zero () =
  let n = Sym.fresh "N" and out = Sym.fresh "out" in
  let p =
    mk_proc ~name:"t"
      ~args:[ size_arg n; tensor_arg out Dtype.F32 [ int 1 ] ]
      [ assign out [ div (int 4) (var n) ] (flt 1.0) ]
  in
  let ck = C.compile p in
  let b = B.create ~init:0.0 Dtype.F32 [ 1 ] in
  Alcotest.(check bool) "division by zero raises" true
    (try
       C.run ck [ I.VInt 0; I.VBuf b ];
       false
     with I.Runtime_error _ -> true)

let test_compiled_alloc_scoping () =
  (* a fresh buffer per SAlloc execution, written then read back *)
  let out = Sym.fresh "out" and t = Sym.fresh "t" in
  let i = Sym.fresh "i" and i2 = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg out Dtype.F32 [ int 4 ] ]
      [
        alloc t Dtype.F32 [ int 4 ];
        loopn i (int 4) [ assign t [ var i ] (flt 6.0) ];
        loopn i2 (int 4) [ assign out [ var i2 ] (rd t [ var i2 ]) ];
      ]
  in
  let ck = C.compile p in
  let b = B.create Dtype.F32 [ 4 ] in
  C.run ck [ I.VBuf b ];
  Alcotest.(check (float 0.0)) "copied through alloc" 6.0 (B.get b [| 3 |])

let test_compiled_call_window () =
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let p =
    mk_proc ~name:"t"
      ~args:
        [
          tensor_arg ~mem:Exo_isa.Neon.mem dst Dtype.F32 [ int 4 ];
          tensor_arg src Dtype.F32 [ int 2; int 8 ];
        ]
      [
        call Exo_isa.Neon.vld_4xf32
          [
            win dst [ ivn (int 0) (int 4) ];
            win src [ pt (int 1); ivn (int 4) (int 4) ];
          ];
      ]
  in
  let ck = C.compile p in
  let s = B.create ~init:0.0 Dtype.F32 [ 2; 8 ] in
  B.fill s (fun idx -> float_of_int ((idx.(0) * 8) + idx.(1)));
  let d = B.create Dtype.F32 [ 4 ] in
  C.run ck [ I.VBuf d; I.VBuf s ];
  Alcotest.(check (float 0.0)) "window base" 12.0 (B.get d [| 0 |]);
  Alcotest.(check (float 0.0)) "window end" 15.0 (B.get d [| 3 |])

let test_compiled_f16_rounding () =
  (* dtype rounding is applied on the compiled write path too: at 2048 the
     f16 spacing is 2, so += 1 is absorbed *)
  let acc = Sym.fresh "acc" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg acc Dtype.F16 [ int 1 ] ]
      [ loopn i (int 4) [ reduce acc [ int 0 ] (flt 1.0) ] ]
  in
  let ck = C.compile p in
  let b = B.create ~init:0.0 Dtype.F16 [ 1 ] in
  B.set b [| 0 |] 2048.0;
  C.run ck [ I.VBuf b ];
  Alcotest.(check (float 0.0)) "f16 absorbs +1 at 2048" 2048.0 (B.get b [| 0 |])

let test_compiled_run_is_reusable () =
  (* compile once, run many: repeated runs see fresh argument bindings *)
  let n = Sym.fresh "N" and acc = Sym.fresh "acc" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"sum"
      ~args:[ size_arg n; tensor_arg acc Dtype.F64 [ int 1 ] ]
      [ loopn i (var n) [ reduce acc [ int 0 ] (flt 1.0) ] ]
  in
  let ck = C.compile p in
  List.iter
    (fun n_iters ->
      let b = B.create ~init:0.0 Dtype.F64 [ 1 ] in
      C.run ck [ I.VInt n_iters; I.VBuf b ];
      Alcotest.(check (float 0.0))
        (Fmt.str "sum of %d ones" n_iters)
        (float_of_int n_iters) (B.get b [| 0 |]))
    [ 10; 0; 3; 100 ]

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_compiled_equals_interpreted;
        prop_compiled_equals_interpreted_scheduled;
        prop_to_ukr_equiv;
      ]
  in
  Alcotest.run "compile"
    [
      ("equivalence", props);
      ( "kernels",
        [
          Alcotest.test_case "paper family f32" `Quick test_family_kernels_agree;
          Alcotest.test_case "family f16" `Quick test_family_kernels_agree_f16;
        ] );
      ( "to_ukr",
        [
          Alcotest.test_case "paper family f32" `Quick test_to_ukr_family_f32;
          Alcotest.test_case "family f16, offset panels" `Quick
            test_to_ukr_family_f16;
          Alcotest.test_case "every kit (all styles)" `Quick test_to_ukr_all_kits;
          Alcotest.test_case "kc = 0" `Quick test_to_ukr_kc_zero;
          Alcotest.test_case "short array diverts and raises" `Quick
            test_to_ukr_short_array_raises;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "top-level precondition" `Quick
            test_compiled_precondition_toplevel;
          Alcotest.test_case "bad stride rejected" `Quick
            test_compiled_rejects_bad_stride;
          Alcotest.test_case "bad lane rejected" `Quick test_compiled_rejects_bad_lane;
          Alcotest.test_case "division by zero" `Quick test_compiled_division_by_zero;
          Alcotest.test_case "alloc scoping" `Quick test_compiled_alloc_scoping;
          Alcotest.test_case "call window" `Quick test_compiled_call_window;
          Alcotest.test_case "f16 rounding" `Quick test_compiled_f16_rounding;
          Alcotest.test_case "compile once run many" `Quick
            test_compiled_run_is_reusable;
        ] );
    ]
