(* Tests of the static effect system (Exo_check.Effects): unit tests
   pinning the region-algebra verdicts and inferred signatures, plus a
   qcheck soundness property — any rewrite the effect-based oracles admit
   must be bit-exact under the compiled execution engine. *)

open Exo_ir
open Ir
open Builder
module E = Exo_check.Effects
module Sched = Exo_sched.Sched
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile

let aff e = Option.get (Affine.of_expr e)
let check_bool = Alcotest.(check bool)

(* --- region algebra ------------------------------------------------------ *)

(* a context with one loop binder i in [0, 6) *)
let i_sym = Sym.fresh "i"
let ctx_i = E.ctx_push_loop E.ctx_empty i_sym (int 0) (int 6)
let pt e = E.DPt (aff e)
let ivl lo hi = E.DIv (aff lo, aff hi)

let test_point_disjoint () =
  check_bool "i vs i+1 disjoint" true
    (E.region_disjoint ctx_i [ pt (var i_sym) ] [ pt (add (var i_sym) (int 1)) ]);
  check_bool "i vs i not disjoint" false
    (E.region_disjoint ctx_i [ pt (var i_sym) ] [ pt (var i_sym) ]);
  check_bool "different unrelated points stay may-overlapping" false
    (E.region_disjoint ctx_i [ pt (var i_sym) ] [ pt (int 3) ])

let test_interval_disjoint () =
  check_bool "[0,2] vs [3,5] disjoint" true
    (E.region_disjoint ctx_i [ ivl (int 0) (int 2) ] [ ivl (int 3) (int 5) ]);
  check_bool "[0,3] vs [3,5] overlap" false
    (E.region_disjoint ctx_i [ ivl (int 0) (int 3) ] [ ivl (int 3) (int 5) ]);
  check_bool "rank mismatch is never disjoint" false
    (E.region_disjoint ctx_i [ ivl (int 0) (int 2) ]
       [ ivl (int 3) (int 5); pt (int 0) ])

let test_containment () =
  check_bool "i in [0,5] under i<6" true
    (E.region_contains ctx_i ~outer:[ ivl (int 0) (int 5) ]
       ~inner:[ pt (var i_sym) ]);
  check_bool "i+1 not provably in [0,5]" false
    (E.region_contains ctx_i ~outer:[ ivl (int 0) (int 5) ]
       ~inner:[ pt (add (var i_sym) (int 1)) ]);
  check_bool "[1,4] in [0,5]" true
    (E.region_contains ctx_i ~outer:[ ivl (int 0) (int 5) ]
       ~inner:[ ivl (int 1) (int 4) ])

let test_in_range () =
  check_bool "i in [0,6)" true
    (E.in_range ctx_i (aff (var i_sym)) ~lo:Affine.zero ~hi_excl:(aff (int 6)));
  check_bool "i not provably in [0,5)" false
    (E.in_range ctx_i (aff (var i_sym)) ~lo:Affine.zero ~hi_excl:(aff (int 5)))

let test_covers () =
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  let ranges_of v =
    if Sym.equal v a then Some (0, 2) else if Sym.equal v b then Some (0, 3) else None
  in
  check_bool "3a + b covers [0,6) bijectively" true
    (E.covers ~ranges_of [ aff (add (mul (int 3) (var a)) (var b)) ] [ 6 ]);
  check_bool "2a + b does not cover [0,6)" false
    (E.covers ~ranges_of [ aff (add (mul (int 2) (var a)) (var b)) ] [ 6 ]);
  check_bool "two dims (a, b) cover 2 x 3" true
    (E.covers ~ranges_of [ aff (var a); aff (var b) ] [ 2; 3 ])

(* --- inferred accesses --------------------------------------------------- *)

(* dst[i] = src[i]: an assign-only copy instruction shape *)
let copy_callee =
  let dst = Sym.fresh "dst" and src = Sym.fresh "src" in
  let i = Sym.fresh "i" in
  mk_proc ~name:"cp"
    ~args:[ tensor_arg dst Dtype.F32 [ int 4 ]; tensor_arg src Dtype.F32 [ int 4 ] ]
    [ loop i (int 0) (int 4) [ assign dst [ var i ] (rd src [ var i ]) ] ]

let modes_of p name =
  let sym =
    (List.find (fun (a : arg) -> Sym.name a.a_name = name) p.p_args).a_name
  in
  match List.find_opt (fun (s, _) -> Sym.equal s sym) (E.param_modes p) with
  | Some (_, ms) -> ms
  | None -> []

let test_param_modes () =
  check_bool "dst is write-only" true (modes_of copy_callee "dst" = [ E.MWrite ]);
  check_bool "src is read-only" true (modes_of copy_callee "src" = [ E.MRead ])

let test_call_effects () =
  (* a call's windows take the callee's modes, not conservative write *)
  let x = Sym.fresh "x" and y = Sym.fresh "y" in
  let body = [ call copy_callee [ win x [ ivn (int 0) (int 4) ]; win y [ ivn (int 0) (int 4) ] ] ] in
  let accs = E.collect body in
  let of_buf s = List.filter (fun (a : E.access) -> Sym.equal a.E.buf s) accs in
  check_bool "x (dst slot) is written" true
    (List.exists E.is_write (of_buf x));
  check_bool "y (src slot) is read" true
    (List.exists (fun (a : E.access) -> a.E.mode = E.MRead) (of_buf y));
  check_bool "y (src slot) is never written" false
    (List.exists E.is_write (of_buf y))

let test_proc_signature () =
  let p = Exo_ukr_gen.Source.ukernel_ref_simple () in
  let fp name =
    let sym =
      (List.find (fun (a : arg) -> Sym.name a.a_name = name) p.p_args).a_name
    in
    List.assoc sym (E.proc_signature p)
  in
  let c = fp "C" and ac = fp "Ac" and alpha = fp "alpha" in
  check_bool "C is written" true (c.E.writes <> None);
  check_bool "C is read (accumulation)" true (c.E.reads <> None);
  check_bool "Ac is read-only" true (ac.E.reads <> None && ac.E.writes = None);
  check_bool "alpha is unused in the simple reference" true
    (alpha.E.reads = None && alpha.E.writes = None)

(* --- the preservation certificate ---------------------------------------- *)

let dim0 = 6
let dim1 = 8

let mk_copy_proc () =
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let i = Sym.fresh "i" and j = Sym.fresh "j" in
  let p =
    mk_proc ~name:"p"
      ~args:
        [
          tensor_arg src Dtype.F32 [ int dim0; int dim1 ];
          tensor_arg dst Dtype.F32 [ int dim0; int dim1 ];
        ]
      [
        loop i (int 0) (int dim0)
          [ loop j (int 0) (int dim1)
              [ assign dst [ var i; var j ] (rd src [ var i; var j ]) ] ];
      ]
  in
  (p, src, dst)

let test_preserves_refl () =
  let p, _, _ = mk_copy_proc () in
  check_bool "p preserves p" true (E.preserves ~old_p:p ~new_p:p = Ok ())

let test_preserves_new_write () =
  let p, src, _ = mk_copy_proc () in
  let q = { p with p_body = p.p_body @ [ assign src [ int 0; int 0 ] (flt 0.0) ] } in
  check_bool "writing the read-only src is rejected" true
    (Result.is_error (E.preserves ~old_p:p ~new_p:q))

let test_preserves_escape () =
  let p, src, dst = mk_copy_proc () in
  (* provably outside the original [0, dim0) x [0, dim1) write hull *)
  let q =
    {
      p with
      p_body = p.p_body @ [ assign dst [ int (dim0 + 1); int 0 ] (rd src [ int 0; int 0 ]) ];
    }
  in
  check_bool "a provable write-footprint escape is rejected" true
    (Result.is_error (E.preserves ~old_p:p ~new_p:q))

let test_preserves_fresh_buffer () =
  let p, _, _ = mk_copy_proc () in
  let other = Sym.fresh "other" in
  let q =
    {
      p with
      p_args = p.p_args @ [ tensor_arg other Dtype.F32 [ int 2 ] ];
      p_body = p.p_body @ [ assign other [ int 0 ] (flt 1.0) ];
    }
  in
  check_bool "touching a buffer the original never accessed is rejected" true
    (Result.is_error (E.preserves ~old_p:p ~new_p:q))

(* --- qcheck soundness: admitted rewrites are bit-exact ------------------- *)

(* Same random-program shape as test_sched_random, but the oracle runs both
   procs through the compiled execution engine (Exo_interp.Compile). *)

type gctx = { src : Sym.t; dst : Sym.t; loops : (Sym.t * int) list }

let gen_index ctx ~(bound : int) : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let candidates =
    List.filter (fun (_, ext) -> ext <= bound) ctx.loops
    |> List.map (fun (v, ext) ->
           if ext = bound then return (Var v)
           else map (fun c -> Binop (Add, Var v, Int c)) (int_range 0 (bound - ext)))
  in
  oneof (map (fun c -> Int c) (int_range 0 (bound - 1)) :: candidates)

let gen_leaf ctx : stmt QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i0 = gen_index ctx ~bound:dim0 in
  let* i1 = gen_index ctx ~bound:dim1 in
  let* r0 = gen_index ctx ~bound:dim0 in
  let* r1 = gen_index ctx ~bound:dim1 in
  let read = Read (ctx.src, [ r0; r1 ]) in
  let* e = oneofl [ read; Binop (Add, read, Float 1.0); Float 2.0 ] in
  oneofl [ SAssign (ctx.dst, [ i0; i1 ], e); SReduce (ctx.dst, [ i0; i1 ], e) ]

let loop_name_pool = [| "i"; "j"; "p"; "q" |]

let rec gen_body ctx ~(depth : int) : stmt list QCheck2.Gen.t =
  let open QCheck2.Gen in
  if depth = 0 then map (fun s -> [ s ]) (gen_leaf ctx)
  else
    let* n_stmts = int_range 1 2 in
    list_repeat n_stmts
      (let* make_loop = bool in
       if make_loop then
         let* ext = oneofl [ 2; 3; 4; 6 ] in
         let v = Sym.fresh loop_name_pool.(depth mod Array.length loop_name_pool) in
         let ctx' = { ctx with loops = (v, ext) :: ctx.loops } in
         let* inner = gen_body ctx' ~depth:(depth - 1) in
         return (SFor (v, Int 0, Int ext, inner))
       else gen_leaf ctx)

let gen_proc : proc QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let ctx = { src; dst; loops = [] } in
  let* body = gen_body ctx ~depth in
  let p =
    mk_proc ~name:"rand"
      ~args:
        [
          tensor_arg src Dtype.F32 [ Int dim0; Int dim1 ];
          tensor_arg dst Dtype.F32 [ Int dim0; Int dim1 ];
        ]
      body
  in
  Exo_check.Wellformed.check_proc p;
  return p

let run_compiled (t : C.t) ~(seed : int) : B.t =
  let st = Random.State.make [| seed |] in
  let mk () =
    let b = B.create ~init:0.0 Dtype.F32 [ dim0; dim1 ] in
    B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
    b
  in
  let src = mk () and dst = mk () in
  C.run t [ I.VBuf src; I.VBuf dst ];
  dst

let equivalent p q =
  let tp = C.compile p and tq = C.compile q in
  List.for_all
    (fun seed -> B.equal (run_compiled tp ~seed) (run_compiled tq ~seed))
    [ 1; 2; 3 ]

let sound (xform : proc -> proc) (p : proc) : bool =
  match xform p with
  | p' -> equivalent p p'
  | exception Sched.Sched_error _ -> true

let loop_names_of (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (function SFor (v, _, _, _) -> acc := Sym.name v :: !acc | _ -> ())
    p.p_body;
  List.sort_uniq compare !acc

let pick_loop (p : proc) (salt : int) : string option =
  match loop_names_of p with
  | [] -> None
  | l -> Some (List.nth l (abs salt mod List.length l))

(* one property over the oracle-driven primitives: the effect-based legality
   answers must never admit a meaning-changing rewrite *)
let prop_oracle_sound =
  QCheck2.Test.make
    ~name:"effect-oracle-admitted rewrites are bit-exact (compiled engine)"
    ~count:200
    QCheck2.Gen.(pair gen_proc (int_range 0 1000))
    (fun (p, salt) ->
      match pick_loop p salt with
      | None -> true
      | Some v ->
          let xform p =
            match salt mod 4 with
            | 0 -> (
                match pick_loop p (salt + 1) with
                | Some w when w <> v -> Sched.reorder_loops p (v ^ " " ^ w)
                | _ -> Sched.reorder_loops p (v ^ " " ^ v))
            | 1 -> Sched.fuse_loops p v
            | 2 ->
                let pat = if salt mod 2 = 0 then "dst[_] = _" else "dst[_] += _" in
                Sched.autofission p ~gap:(Sched.After pat) ~n_lifts:(1 + (salt mod 2))
            | _ -> Sched.remove_loop p v
          in
          sound xform p)

(* the certificate itself must hold on every admitted rewrite (the
   primitives raise internally if not, but pin it from the outside too) *)
let prop_certificate =
  QCheck2.Test.make
    ~name:"admitted rewrites carry the effect-preservation certificate"
    ~count:120
    QCheck2.Gen.(pair gen_proc (int_range 0 1000))
    (fun (p, salt) ->
      match pick_loop p salt with
      | None -> true
      | Some v -> (
          match Sched.fuse_loops p v with
          | p' -> E.preserves ~old_p:p ~new_p:p' = Ok ()
          | exception Sched.Sched_error _ -> true))

let () =
  Alcotest.run "effects"
    [
      ( "region algebra",
        [
          Alcotest.test_case "point disjointness" `Quick test_point_disjoint;
          Alcotest.test_case "interval disjointness" `Quick test_interval_disjoint;
          Alcotest.test_case "containment" `Quick test_containment;
          Alcotest.test_case "in_range" `Quick test_in_range;
          Alcotest.test_case "coverage bijection" `Quick test_covers;
        ] );
      ( "inference",
        [
          Alcotest.test_case "param_modes" `Quick test_param_modes;
          Alcotest.test_case "call windows take callee modes" `Quick test_call_effects;
          Alcotest.test_case "proc_signature of the reference kernel" `Quick
            test_proc_signature;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "reflexive" `Quick test_preserves_refl;
          Alcotest.test_case "new write rejected" `Quick test_preserves_new_write;
          Alcotest.test_case "footprint escape rejected" `Quick test_preserves_escape;
          Alcotest.test_case "fresh buffer rejected" `Quick test_preserves_fresh_buffer;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_oracle_sound; prop_certificate ] );
    ]
