(* Scheduling primitives: positive behaviour, legality rejections, and
   semantics preservation (interpreter equivalence before/after). *)

open Exo_ir
open Ir
open Builder
module Sched = Exo_sched.Sched
module B = Exo_interp.Buffer
module I = Exo_interp.Interp

let raises_sched f =
  try
    ignore (f ());
    false
  with Sched.Sched_error _ -> true

let check_sched_error msg f = Alcotest.(check bool) msg true (raises_sched f)

(* Run the simplified reference signature (KC, alpha, Ac, Bc, beta, C) on
   deterministic data and return C. *)
let run_kernel ?(mr = 8) ?(nr = 12) ?(kc = 5) (p : proc) ~(specialized : bool) :
    B.t =
  let st = Random.State.make [| mr; nr; kc; 7 |] in
  let mk dims =
    let b = B.create ~init:0.0 Dtype.F32 dims in
    B.fill b (fun _ -> float_of_int (Random.State.int st 7 - 3));
    b
  in
  let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] and c = mk [ nr; mr ] in
  let one = B.of_array Dtype.F32 [ 1 ] [| 1.0 |] in
  let args =
    if specialized then [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c ]
    else
      [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c ]
  in
  I.run p args;
  c

let reference_result ?mr ?nr ?kc () =
  run_kernel ?mr ?nr ?kc (Exo_ukr_gen.Source.ukernel_ref_simple ()) ~specialized:false

(* A specialized starting point most tests transform. *)
let base ?(mr = 8) ?(nr = 12) () =
  let p = Exo_ukr_gen.Source.ukernel_ref_simple () in
  Sched.partial_eval p [ ("MR", mr); ("NR", nr) ]

let check_equiv msg ?(mr = 8) ?(nr = 12) (p : proc) =
  let expected = reference_result ~mr ~nr () in
  let got = run_kernel ~mr ~nr p ~specialized:true in
  Alcotest.(check bool) msg true (B.equal expected got)

(* --- partial_eval ----------------------------------------------------- *)

let test_partial_eval_specializes () =
  let p = base () in
  Alcotest.(check int) "two fewer args" 6 (List.length p.p_args);
  check_equiv "specialization preserves semantics" p

let test_partial_eval_errors () =
  let p = Exo_ukr_gen.Source.ukernel_ref_simple () in
  check_sched_error "unknown size" (fun () -> Sched.partial_eval p [ ("QQ", 3) ]);
  check_sched_error "non-size arg" (fun () -> Sched.partial_eval p [ ("alpha", 3) ]);
  check_sched_error "non-positive" (fun () -> Sched.partial_eval p [ ("MR", 0) ])

(* --- divide_loop ------------------------------------------------------ *)

let test_divide_perfect () =
  let p = Sched.divide_loop (base ()) "i" 4 ("it", "itt") ~tail:Sched.Perfect in
  Alcotest.(check int) "it loop appears" 1 (Exo_pattern.Pattern.count p.p_body "it");
  check_equiv "perfect divide preserves semantics" p

let test_divide_imperfect_rejected () =
  check_sched_error "5 does not divide 12" (fun () ->
      Sched.divide_loop (base ()) "j" 5 ("jt", "jtt") ~tail:Sched.Perfect)

let test_divide_symbolic_rejected () =
  check_sched_error "symbolic extent not provably divisible" (fun () ->
      Sched.divide_loop (base ()) "k" 4 ("kt", "ktt") ~tail:Sched.Perfect)

let test_divide_cut () =
  (* 12 = 2*5 + 2 remainder *)
  let p = Sched.divide_loop (base ()) "j" 5 ("jt", "jtt") ~tail:Sched.Cut in
  check_equiv "cut divide preserves semantics" p

let test_divide_cut_symbolic () =
  let p = Sched.divide_loop (base ()) "k" 4 ("kt", "ktt") ~tail:Sched.Cut in
  check_equiv "symbolic cut divide preserves semantics" p

let test_divide_bad_quotient () =
  check_sched_error "quotient 0" (fun () ->
      Sched.divide_loop (base ()) "i" 0 ("a", "b") ~tail:Sched.Perfect)

(* --- reorder_loops ---------------------------------------------------- *)

let test_reorder_ok () =
  let p = Sched.reorder_loops (base ()) "j i" in
  (match Exo_pattern.Pattern.find_first_stmt p.p_body "for k in _: _" with
  | _, SFor (_, _, _, [ SFor (v, _, _, _) ]) ->
      Alcotest.(check string) "i now outer under k" "i" (Sym.name v)
  | _ -> Alcotest.fail "unexpected structure");
  check_equiv "reorder preserves semantics" p

let test_reorder_not_nested () =
  check_sched_error "k and i are not directly nested" (fun () ->
      Sched.reorder_loops (base ()) "k i")

let test_reorder_illegal_dependence () =
  let i = Sym.fresh "i" and j = Sym.fresh "j" and s = Sym.fresh "s" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg s Dtype.F32 [ int 1 ] ]
      [
        loopn j (int 4)
          [ loopn i (int 4) [ assign s [ int 0 ] (add (var i) (flt 0.0)) ] ];
      ]
  in
  (* note: i is an int var in a float expr — make it well-typed instead *)
  ignore p;
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg s Dtype.F32 [ int 8 ] ]
      [
        loopn j (int 4)
          [ loopn i (int 4) [ assign s [ var i ] (rd s [ var j ]) ] ];
      ]
  in
  check_sched_error "cross-iteration flow rejected" (fun () ->
      Sched.reorder_loops p "j i")

(* --- unroll_loop ------------------------------------------------------ *)

let test_unroll_ok () =
  let p = Sched.divide_loop (base ()) "i" 4 ("it", "itt") ~tail:Sched.Perfect in
  let p = Sched.unroll_loop p "it" in
  Alcotest.(check int) "it gone" 0 (Exo_pattern.Pattern.count p.p_body "it");
  check_equiv "unroll preserves semantics" p

let test_unroll_symbolic_rejected () =
  check_sched_error "symbolic bounds" (fun () -> Sched.unroll_loop (base ()) "k")

(* --- remove_loop ------------------------------------------------------ *)

let test_remove_loop_ok () =
  let k = Sym.fresh "k" and kc = Sym.fresh "KC" in
  let dst = Sym.fresh "dst" and src = Sym.fresh "src" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:[ size_arg kc; tensor_arg dst Dtype.F32 [ int 4 ]; tensor_arg src Dtype.F32 [ int 4 ] ]
      [ loopn k (var kc) [ loopn i (int 4) [ assign dst [ var i ] (rd src [ var i ]) ] ] ]
  in
  let p' = Sched.remove_loop p "k" in
  Alcotest.(check int) "k loop removed" 0 (Exo_pattern.Pattern.count p'.p_body "k")

let test_remove_loop_uses_var () =
  let p = base () in
  check_sched_error "body uses k" (fun () -> Sched.remove_loop p "k")

let test_remove_loop_not_idempotent () =
  let k = Sym.fresh "k" and kc = Sym.fresh "KC" and a = Sym.fresh "a" in
  let p =
    mk_proc ~name:"t"
      ~args:[ size_arg kc; tensor_arg a Dtype.F32 [ int 1 ] ]
      [ loopn k (var kc) [ reduce a [ int 0 ] (flt 1.0) ] ]
  in
  check_sched_error "reduction body" (fun () -> Sched.remove_loop p "k")

let test_remove_loop_trip_count () =
  let k = Sym.fresh "k" and a = Sym.fresh "a" and b = Sym.fresh "b" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg a Dtype.F32 [ int 1 ]; tensor_arg b Dtype.F32 [ int 1 ] ]
      [ loop k (int 0) (int 0) [ assign a [ int 0 ] (rd b [ int 0 ]) ] ]
  in
  check_sched_error "possibly zero trips" (fun () -> Sched.remove_loop p "k")

(* --- stage_mem -------------------------------------------------------- *)

let staged_base () =
  let p = base () in
  let p = Sched.divide_loop p "i" 4 ("it", "itt") ~tail:Sched.Perfect in
  Sched.divide_loop p "j" 4 ("jt", "jtt") ~tail:Sched.Perfect

let test_stage_mem_window () =
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  Alcotest.(check int) "C_reg allocated" 1 (Exo_pattern.Pattern.count p.p_body "C_reg : _");
  check_equiv "stage_mem preserves semantics" p

let test_stage_mem_point () =
  (* scalar staging of the accumulation cell *)
  let p = base () in
  let p = Sched.stage_mem p "C[_] += _" "C[j, i]" "acc" in
  check_equiv "point staging preserves semantics" p

let test_stage_mem_escape_rejected () =
  check_sched_error "window smaller than the accesses" (fun () ->
      Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:4, 0:8]" "C_reg")

let test_stage_mem_unknown_buffer () =
  check_sched_error "unknown buffer" (fun () ->
      Sched.stage_mem (staged_base ()) "for k in _: _" "Zz[0:4]" "r")

(* --- bind_expr / expand_dim / lift_alloc / divide_dim ----------------- *)

let test_bind_expr () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  Alcotest.(check int) "A_reg bound" 1 (Exo_pattern.Pattern.count p.p_body "A_reg : _");
  check_equiv "bind_expr preserves semantics" p

let test_bind_expr_missing () =
  check_sched_error "no such read" (fun () -> Sched.bind_expr (staged_base ()) "Zc[_]" "r")

let test_expand_dim () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  let p = Sched.expand_dim p "A_reg" "4" "itt" in
  let p = Sched.expand_dim p "A_reg" "2" "it" in
  check_equiv "expand_dim preserves semantics" p

let test_expand_dim_out_of_range () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  check_sched_error "index exceeds the new extent" (fun () ->
      Sched.expand_dim p "A_reg" "2" "itt")

let test_expand_dim_bad_name () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  check_sched_error "name not in scope" (fun () -> Sched.expand_dim p "A_reg" "4" "zz")

let test_lift_alloc_and_fission () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  let p = Sched.expand_dim p "A_reg" "4" "itt" in
  let p = Sched.expand_dim p "A_reg" "2" "it" in
  let p = Sched.lift_alloc p "A_reg" ~n_lifts:5 in
  let p = Sched.autofission p ~gap:(Sched.After "A_reg[_] = _") ~n_lifts:4 in
  check_equiv "lift + fission preserve semantics" p

let test_fission_without_lift_rejected () =
  let p = Sched.bind_expr (staged_base ()) "Ac[_]" "A_reg" in
  let p = Sched.expand_dim p "A_reg" "4" "itt" in
  (* the alloc still sits next to the load: fission would unscope it *)
  check_sched_error "escaping allocation" (fun () ->
      Sched.autofission p ~gap:(Sched.After "A_reg[_] = _") ~n_lifts:2)

let test_autofission_too_few_loops () =
  check_sched_error "not enough enclosing loops" (fun () ->
      Sched.autofission (base ()) ~gap:(Sched.After "C[_] += _") ~n_lifts:9)

let test_divide_dim () =
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 4 in
  (match Exo_pattern.Pattern.find_first_stmt p.p_body "C_reg : _" with
  | _, SAlloc (_, _, [ Int 12; Int 2; Int 4 ], _) -> ()
  | _ -> Alcotest.fail "C_reg should be [12, 2, 4]");
  check_equiv "divide_dim preserves semantics" p

let test_divide_dim_indivisible () =
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  check_sched_error "3 does not divide 8" (fun () -> Sched.divide_dim p "C_reg" 1 3)

let test_lift_alloc_extent_dependency () =
  let kc = Sym.fresh "KC" and k = Sym.fresh "k" and t = Sym.fresh "t" in
  let a = Sym.fresh "a" in
  let p =
    mk_proc ~name:"t"
      ~args:[ size_arg kc; tensor_arg a Dtype.F32 [ var kc ] ]
      [
        loopn k (var kc)
          [ SAlloc (t, Dtype.F32, [ add (var k) (int 1) ], Mem.dram);
            assign t [ int 0 ] (rd a [ var k ]) ];
      ]
  in
  check_sched_error "extent depends on the crossed loop" (fun () ->
      Sched.lift_alloc p "t" ~n_lifts:1)

(* --- bind_expr_bcast -------------------------------------------------- *)

let test_bind_expr_bcast () =
  let p = Sched.divide_loop (base ()) "i" 4 ("it", "itt") ~tail:Sched.Perfect in
  let p = Sched.bind_expr_bcast p "Bc[_]" "B_bcast" in
  Alcotest.(check int) "broadcast buffer allocated" 1
    (Exo_pattern.Pattern.count p.p_body "B_bcast : _");
  check_equiv "bind_expr_bcast preserves semantics" p

let test_bind_expr_bcast_var_dependent () =
  let p = Sched.divide_loop (base ()) "i" 4 ("it", "itt") ~tail:Sched.Perfect in
  (* Ac[k, 4*it+itt] depends on itt: cannot broadcast over itt *)
  check_sched_error "vector-var-dependent read" (fun () ->
      Sched.bind_expr_bcast p "Ac[_]" "A_bcast")

(* --- replace ----------------------------------------------------------- *)

let test_replace_success_structure () =
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 4 in
  let p = Sched.replace p "for s1i in _: _" Exo_isa.Neon.vld_4xf32 in
  Alcotest.(check int) "one vld call" 1
    (Exo_pattern.Pattern.count p.p_body "neon_vld_4xf32(_)");
  let p = Sched.replace p "for s1i in _: _" Exo_isa.Neon.vst_4xf32 in
  Alcotest.(check int) "one vst call" 1
    (Exo_pattern.Pattern.count p.p_body "neon_vst_4xf32(_)");
  check_equiv "replace preserves semantics" p

let test_replace_wrong_shape () =
  (* the compute loop does not unify with a store *)
  check_sched_error "no unifying match" (fun () ->
      Sched.replace (staged_base ()) "for itt in _: _" Exo_isa.Neon.vst_4xf32)

let test_replace_extent_mismatch () =
  let p = Sched.divide_loop (base ()) "i" 2 ("it", "itt") ~tail:Sched.Perfect in
  check_sched_error "2-iteration loop vs 4-lane load" (fun () ->
      Sched.replace p "for itt in _: _" Exo_isa.Neon.vld_4xf32)

let test_replace_stride_violation () =
  (* loads along the strided dimension of Ac (stride MR ≠ 1) must fail *)
  let kc = Sym.fresh "KC" and a = Sym.fresh "Ac" and d = Sym.fresh "dst" in
  let k = Sym.fresh "k" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:
        [
          size_arg kc;
          tensor_arg a Dtype.F32 [ var kc; int 8 ];
          tensor_arg ~mem:Exo_isa.Neon.mem d Dtype.F32 [ int 4 ];
        ]
      [
        loopn k (int 4)
          [ loopn i (int 4) [ assign d [ var i ] (rd a [ add (var k) (var i); int 0 ]) ] ];
      ]
  in
  (* inner loop reads Ac[k+i, 0]: vector dim would be dim 0 with stride 8 *)
  check_sched_error "non-unit stride rejected" (fun () ->
      Sched.replace p "for i in _: _" Exo_isa.Neon.vld_4xf32)

let test_replace_non_instr () =
  check_sched_error "plain proc is not an instruction" (fun () ->
      Sched.replace (staged_base ()) "for itt in _: _" (Exo_ukr_gen.Source.ukernel_ref_simple ()))

(* --- fuse_loops --------------------------------------------------------- *)

let test_fuse_roundtrip () =
  (* two adjacent same-range loops writing disjoint cells fuse; fissioning
     the fused loop gives back the original shape, equivalent throughout *)
  let i1 = Sym.fresh "z" and i2 = Sym.fresh "z" in
  let t = Sym.fresh "t" and u = Sym.fresh "u" and s = Sym.fresh "s" in
  let p0 =
    mk_proc ~name:"t"
      ~args:
        [
          tensor_arg s Dtype.F32 [ int 4 ];
          tensor_arg t Dtype.F32 [ int 4 ];
          tensor_arg u Dtype.F32 [ int 4 ];
        ]
      [
        loopn i1 (int 4) [ assign t [ var i1 ] (mul (rd s [ var i1 ]) (flt 2.0)) ];
        loopn i2 (int 4) [ assign u [ var i2 ] (add (rd t [ var i2 ]) (flt 1.0)) ];
      ]
  in
  let fused = Sched.fuse_loops p0 "z" in
  Alcotest.(check int) "one z loop after fusion" 1
    (Exo_pattern.Pattern.count fused.p_body "z");
  let run p =
    let sb = B.create ~init:0.0 Dtype.F32 [ 4 ] in
    B.fill sb (fun ix -> float_of_int ix.(0));
    let tb = B.create ~init:0.0 Dtype.F32 [ 4 ] in
    let ub = B.create ~init:0.0 Dtype.F32 [ 4 ] in
    I.run p [ I.VBuf sb; I.VBuf tb; I.VBuf ub ];
    (tb, ub)
  in
  let t0, u0 = run p0 and t1, u1 = run fused in
  Alcotest.(check bool) "t equal" true (B.equal t0 t1);
  Alcotest.(check bool) "u equal" true (B.equal u0 u1);
  (* and back: fission the fused loop between its two statements *)
  let refissioned = Sched.autofission fused ~gap:(Sched.After "t[_] = _") ~n_lifts:1 in
  let t2, u2 = run refissioned in
  Alcotest.(check bool) "roundtrip equal" true (B.equal t0 t2 && B.equal u0 u2)

let test_fuse_bounds_mismatch () =
  let i1 = Sym.fresh "a" and i2 = Sym.fresh "b" and t = Sym.fresh "t" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg t Dtype.F32 [ int 8 ] ]
      [
        loopn i1 (int 4) [ assign t [ var i1 ] (flt 0.0) ];
        loopn i2 (int 8) [ assign t [ var i2 ] (flt 1.0) ];
      ]
  in
  check_sched_error "different bounds" (fun () -> Sched.fuse_loops p "a")

let test_fuse_illegal_dependence () =
  (* loop2 reads what loop1 writes at a *different* iteration: fusing would
     read a not-yet-written cell *)
  let i1 = Sym.fresh "a" and i2 = Sym.fresh "b" in
  let t = Sym.fresh "t" and u = Sym.fresh "u" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg t Dtype.F32 [ int 5 ]; tensor_arg u Dtype.F32 [ int 4 ] ]
      [
        loopn i1 (int 4) [ assign t [ add (var i1) (int 1) ] (flt 2.0) ];
        loopn i2 (int 4) [ assign u [ var i2 ] (rd t [ var i2 ]) ];
      ]
  in
  check_sched_error "skewed flow rejected" (fun () -> Sched.fuse_loops p "a")

let test_fuse_flow_violation () =
  (* the genuinely meaning-changing direction: loop2 reads t[i+1], which
     loop1 writes at a *later* iteration. Fused, iteration i reads the
     stale t[i+1] before iteration i+1 overwrites it. *)
  let i1 = Sym.fresh "a" and i2 = Sym.fresh "b" in
  let s = Sym.fresh "s" and t = Sym.fresh "t" and u = Sym.fresh "u" in
  let p =
    mk_proc ~name:"t"
      ~args:
        [
          tensor_arg s Dtype.F32 [ int 4 ];
          tensor_arg t Dtype.F32 [ int 5 ];
          tensor_arg u Dtype.F32 [ int 4 ];
        ]
      [
        loopn i1 (int 4) [ assign t [ var i1 ] (rd s [ var i1 ]) ];
        loopn i2 (int 4) [ assign u [ var i2 ] (rd t [ add (var i2) (int 1) ]) ];
      ]
  in
  check_sched_error "loop-carried flow dependence rejected" (fun () ->
      Sched.fuse_loops p "a")

let test_fuse_no_successor () =
  check_sched_error "nothing after the k loop" (fun () -> Sched.fuse_loops (base ()) "k")

(* --- inline_call -------------------------------------------------------- *)

let test_inline_roundtrip_vld () =
  (* replace then inline gives back an equivalent program *)
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "s1" 4 ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 4 in
  let p = Sched.replace p "for s1i in _: _" Exo_isa.Neon.vld_4xf32 in
  let p = Sched.inline_call p "neon_vld_4xf32(_)" in
  Alcotest.(check int) "call gone" 0
    (Exo_pattern.Pattern.count p.p_body "neon_vld_4xf32(_)");
  check_equiv "replace ∘ inline preserves semantics" p

let test_inline_devectorize_whole_kernel () =
  (* inline every call of the fully scheduled kernel: still bit-exact *)
  let k = Exo_ukr_gen.Family.generate ~mr:8 ~nr:12 () in
  let p = ref k.Exo_ukr_gen.Family.proc in
  (try
     while true do
       p := Sched.inline_call !p "_(_)"
     done
   with Sched.Sched_error _ -> ());
  Alcotest.(check int) "no calls left" 0 (Exo_pattern.Pattern.count !p.p_body "_(_)");
  check_equiv "fully de-vectorized kernel equivalent" !p

let test_inline_non_call_rejected () =
  check_sched_error "loop is not a call" (fun () -> Sched.inline_call (base ()) "k")

(* --- set_memory / set_precision ---------------------------------------- *)

let test_set_memory_lane_check () =
  let p = Sched.stage_mem (staged_base ()) "for k in _: _" "C[0:12, 0:8]" "C_reg" in
  check_sched_error "innermost extent 8 ≠ 4 lanes" (fun () ->
      Sched.set_memory p "C_reg" Exo_isa.Neon.mem)

let test_set_precision_many () =
  let p = base () in
  let p =
    Sched.set_precision_many p [ "alpha"; "Ac"; "Bc"; "beta"; "C" ] Dtype.F16
  in
  List.iter
    (fun (a : arg) ->
      match a.a_typ with
      | TTensor (dt, _) -> Alcotest.(check bool) "f16" true (Dtype.equal dt Dtype.F16)
      | _ -> ())
    p.p_args

let test_set_precision_single_inconsistent () =
  check_sched_error "single-buffer conversion leaves mixed types" (fun () ->
      Sched.set_precision (base ()) "Ac" Dtype.F16)

let () =
  Alcotest.run "sched"
    [
      ( "partial_eval",
        [
          Alcotest.test_case "specializes" `Quick test_partial_eval_specializes;
          Alcotest.test_case "errors" `Quick test_partial_eval_errors;
        ] );
      ( "divide_loop",
        [
          Alcotest.test_case "perfect" `Quick test_divide_perfect;
          Alcotest.test_case "imperfect rejected" `Quick test_divide_imperfect_rejected;
          Alcotest.test_case "symbolic rejected" `Quick test_divide_symbolic_rejected;
          Alcotest.test_case "cut" `Quick test_divide_cut;
          Alcotest.test_case "cut symbolic" `Quick test_divide_cut_symbolic;
          Alcotest.test_case "bad quotient" `Quick test_divide_bad_quotient;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "legal" `Quick test_reorder_ok;
          Alcotest.test_case "not nested" `Quick test_reorder_not_nested;
          Alcotest.test_case "illegal dependence" `Quick test_reorder_illegal_dependence;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "constant" `Quick test_unroll_ok;
          Alcotest.test_case "symbolic rejected" `Quick test_unroll_symbolic_rejected;
        ] );
      ( "remove_loop",
        [
          Alcotest.test_case "redundant loop" `Quick test_remove_loop_ok;
          Alcotest.test_case "uses var" `Quick test_remove_loop_uses_var;
          Alcotest.test_case "not idempotent" `Quick test_remove_loop_not_idempotent;
          Alcotest.test_case "zero trip" `Quick test_remove_loop_trip_count;
        ] );
      ( "stage_mem",
        [
          Alcotest.test_case "window staging" `Quick test_stage_mem_window;
          Alcotest.test_case "point staging" `Quick test_stage_mem_point;
          Alcotest.test_case "escape rejected" `Quick test_stage_mem_escape_rejected;
          Alcotest.test_case "unknown buffer" `Quick test_stage_mem_unknown_buffer;
        ] );
      ( "staging",
        [
          Alcotest.test_case "bind_expr" `Quick test_bind_expr;
          Alcotest.test_case "bind_expr missing" `Quick test_bind_expr_missing;
          Alcotest.test_case "expand_dim" `Quick test_expand_dim;
          Alcotest.test_case "expand_dim range" `Quick test_expand_dim_out_of_range;
          Alcotest.test_case "expand_dim bad name" `Quick test_expand_dim_bad_name;
          Alcotest.test_case "lift + fission" `Quick test_lift_alloc_and_fission;
          Alcotest.test_case "fission alloc escape" `Quick test_fission_without_lift_rejected;
          Alcotest.test_case "fission too few loops" `Quick test_autofission_too_few_loops;
          Alcotest.test_case "divide_dim" `Quick test_divide_dim;
          Alcotest.test_case "divide_dim indivisible" `Quick test_divide_dim_indivisible;
          Alcotest.test_case "lift extent dependency" `Quick test_lift_alloc_extent_dependency;
          Alcotest.test_case "bind_expr_bcast" `Quick test_bind_expr_bcast;
          Alcotest.test_case "bcast var dependency" `Quick test_bind_expr_bcast_var_dependent;
        ] );
      ( "replace",
        [
          Alcotest.test_case "success" `Quick test_replace_success_structure;
          Alcotest.test_case "wrong shape" `Quick test_replace_wrong_shape;
          Alcotest.test_case "extent mismatch" `Quick test_replace_extent_mismatch;
          Alcotest.test_case "stride violation" `Quick test_replace_stride_violation;
          Alcotest.test_case "non-instruction" `Quick test_replace_non_instr;
          Alcotest.test_case "fuse roundtrip" `Quick test_fuse_roundtrip;
          Alcotest.test_case "fuse bounds mismatch" `Quick test_fuse_bounds_mismatch;
          Alcotest.test_case "fuse illegal dep" `Quick test_fuse_illegal_dependence;
          Alcotest.test_case "fuse loop-carried flow" `Quick test_fuse_flow_violation;
          Alcotest.test_case "fuse no successor" `Quick test_fuse_no_successor;
          Alcotest.test_case "inline roundtrip" `Quick test_inline_roundtrip_vld;
          Alcotest.test_case "inline de-vectorize" `Quick test_inline_devectorize_whole_kernel;
          Alcotest.test_case "inline non-call" `Quick test_inline_non_call_rejected;
        ] );
      ( "attrs",
        [
          Alcotest.test_case "set_memory lanes" `Quick test_set_memory_lane_check;
          Alcotest.test_case "set_precision_many" `Quick test_set_precision_many;
          Alcotest.test_case "set_precision mixed" `Quick test_set_precision_single_inconsistent;
        ] );
    ]
