(** The paper's evaluation, experiment by experiment.

    Each [figNN]/[tabN] function regenerates one table or figure of the
    CGO'24 paper on the modeled Carmel machine and prints it in the same
    rows/series the paper reports. EXPERIMENTS.md records the paper-vs-
    reproduced comparison for each. *)

module KM = Exo_sim.Kernel_model
module T = Exo_sim.Trace
module M = Exo_isa.Machine
module D = Exo_blis.Driver
module R = Exo_blis.Registry
module A = Exo_blis.Analytical
module W = Exo_workloads.Models
module Family = Exo_ukr_gen.Family
module Kits = Exo_ukr_gen.Kits

let machine = M.carmel
let kc_solo = 512 (* the BLIS packing depth on this machine (Section IV-A) *)

(* Every multi-row experiment fans its independent rows out on the shared
   domain pool ([-j]/EXO_JOBS); rows come back in input order, so the
   printed figures are byte-identical at any width. *)
let pool () = Exo_par.Pool.global ()

let hr () = Fmt.pr "%s@." (String.make 78 '-')

let section title =
  hr ();
  Fmt.pr "%s@." title;
  hr ()

(* ------------------------------------------------------------------ *)
(* Fig. 12 — the generated code and its k-loop instruction census      *)

let fig12 () =
  section
    "Fig. 12 — generated 8x12 kernel: emitted C and k-loop census (gcc -S \
     equivalent)";
  let k = Family.generate ~mr:8 ~nr:12 () in
  Fmt.pr "%s@." (Exo_codegen.C_emit.compilation_unit [ k.Family.proc ]);
  let t = T.of_proc k.Family.proc in
  Fmt.pr "k-loop census (paper: 5 x 128-bit loads + 24 fmla, no spills):@.";
  Fmt.pr "  per iteration : %a@." T.pp t.T.steady;
  Fmt.pr "  prologue      : %a@." T.pp t.T.prologue;
  Fmt.pr "  vector registers resident: %d of %d (%s)@." t.T.vregs_used
    machine.M.vec.Exo_isa.Memories.num_regs
    (if t.T.vregs_used <= machine.M.vec.Exo_isa.Memories.num_regs then "no spills"
     else "SPILLS");
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Fig. 13 — solo-mode micro-kernels                                   *)

let solo_impls () =
  let base = R.base_8x12 () in
  (KM.neon_intrinsics_8x12 base, KM.blis_asm_8x12 base)

let fig13 () =
  section
    (Fmt.str
       "Fig. 13 — solo-mode micro-kernel GFLOPS (Kc = %d, FP32, Carmel @@ 2.3 \
        GHz, peak %.1f)"
       kc_solo
       (M.peak_gflops machine Exo_ir.Dtype.F32));
  let neon, blis = solo_impls () in
  Fmt.pr "%8s %10s %10s %10s   %s@." "size" "NEON" "BLIS" "EXO" "best";
  List.iter
    (fun (mu, nu) ->
      let exo = R.exo_impl ~mr:mu ~nr:nu () in
      let gn = KM.solo_gflops machine neon ~mu ~nu ~kc:kc_solo in
      let gb = KM.solo_gflops machine blis ~mu ~nu ~kc:kc_solo in
      let ge = KM.solo_gflops machine exo ~mu ~nu ~kc:kc_solo in
      let best = if ge >= gb && ge >= gn then "EXO" else if gb >= gn then "BLIS" else "NEON" in
      Fmt.pr "%8s %10.2f %10.2f %10.2f   %s@." (Fmt.str "%dx%d" mu nu) gn gb ge best)
    Family.paper_shapes;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Fig. 14 — squarish GEMM                                             *)

let squarish_sizes = [ 1000; 2000; 4000; 5000 ]

let fig14 () =
  section "Fig. 14 — squarish GEMM GFLOPS (m = n = k)";
  let setups = D.all_setups () in
  Fmt.pr "%6s" "size";
  List.iter (fun s -> Fmt.pr " %14s" (D.name_of s)) setups;
  Fmt.pr "   EXO kernel@.";
  let rows =
    Exo_par.Pool.map (pool ())
      (fun sz ->
        ( sz,
          List.map (fun s -> D.gflops machine s ~m:sz ~n:sz ~k:sz) setups,
          D.selected_kernel machine (D.alg_exo ()) ~m:sz ~n:sz ~k:sz ))
      squarish_sizes
  in
  List.iter
    (fun (sz, gs, kname) ->
      Fmt.pr "%6d" sz;
      List.iter (fun g -> Fmt.pr " %14.2f" g) gs;
      Fmt.pr "   %s@." kname)
    rows;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Tables I and II — IM2ROW GEMM dimensions                            *)

let print_table name (layers : W.layer list) expected =
  section (name ^ " (recomputed from the conv layer shapes via IM2ROW)");
  Fmt.pr "%4s %-28s %8s %6s %6s   %s@." "id" "layer numbers" "m" "n" "k" "paper";
  List.iter2
    (fun (l : W.layer) (em, en, ek) ->
      let m, n, k = W.gemm_dims l in
      Fmt.pr "%4d %-28s %8d %6d %6d   %s@." l.W.id l.W.layer_numbers m n k
        (if (m, n, k) = (em, en, ek) then "match"
         else Fmt.str "paper prints (%d, %d, %d)" em en ek))
    layers expected;
  Fmt.pr "@."

let tab1 () = print_table "Table I — ResNet50 v1.5" W.resnet50 W.table1_expected
let tab2 () = print_table "Table II — VGG16" W.vgg16 W.table2_expected

(* ------------------------------------------------------------------ *)
(* Figs. 15/17 — per-layer GFLOPS; Figs. 16/18 — aggregated time       *)

let per_layer_figure ~(fig : string) ~(model : string) (layers : W.layer list) =
  section (Fmt.str "%s — %s per-layer GFLOPS" fig model);
  let setups = D.all_setups () in
  Fmt.pr "%4s %18s" "id" "(m, n, k)";
  List.iter (fun s -> Fmt.pr " %9s" (D.name_of s)) setups;
  Fmt.pr "   best@.";
  let winners = Hashtbl.create 8 in
  let rows =
    Exo_par.Pool.map (pool ())
      (fun (l : W.layer) ->
        let m, n, k = W.gemm_dims l in
        let results =
          List.map (fun s -> (D.name_of s, D.gflops machine s ~m ~n ~k)) setups
        in
        (l, (m, n, k), results))
      layers
  in
  List.iter
    (fun ((l : W.layer), (m, n, k), results) ->
      let best, _ =
        List.fold_left (fun (bn, bg) (nm, g) -> if g > bg then (nm, g) else (bn, bg))
          ("", 0.0) results
      in
      Hashtbl.replace winners best (1 + Option.value ~default:0 (Hashtbl.find_opt winners best));
      Fmt.pr "%4d %18s" l.W.id (Fmt.str "(%d, %d, %d)" m n k);
      List.iter (fun (_, g) -> Fmt.pr " %9.2f" g) results;
      Fmt.pr "   %s@." best)
    rows;
  Fmt.pr "winners:";
  List.iter
    (fun s ->
      let n = Option.value ~default:0 (Hashtbl.find_opt winners (D.name_of s)) in
      Fmt.pr " %s %d/%d;" (D.name_of s) n (List.length layers))
    setups;
  Fmt.pr "@.@."

let aggregated_figure ~(fig : string) ~(model : string) (layers : W.layer list) =
  section (Fmt.str "%s — %s aggregated inference time (all conv layers, batch 1)" fig model);
  let setups = D.all_setups () in
  let totals =
    Exo_par.Pool.map (pool ())
      (fun s ->
        let t =
          List.fold_left
            (fun acc (l : W.layer) ->
              let m, n, k = W.gemm_dims l in
              acc +. (float_of_int l.W.count *. fst (D.time machine s ~m ~n ~k)))
            0.0 layers
        in
        (D.name_of s, t))
      setups
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) totals in
  List.iter (fun (nm, t) -> Fmt.pr "%10s : %8.2f ms@." nm (t *. 1e3)) totals;
  Fmt.pr "ranking (fastest first): %s@.@."
    (String.concat " < " (List.map fst sorted))

let fig15 () = per_layer_figure ~fig:"Fig. 15" ~model:"ResNet50 v1.5" W.resnet50
let fig16 () = aggregated_figure ~fig:"Fig. 16" ~model:"ResNet50 v1.5" W.resnet50
let fig17 () = per_layer_figure ~fig:"Fig. 17" ~model:"VGG16" W.vgg16
let fig18 () = aggregated_figure ~fig:"Fig. 18" ~model:"VGG16" W.vgg16

(* ------------------------------------------------------------------ *)
(* Ablations — the design choices DESIGN.md calls out                  *)

let ablation_unroll () =
  section "Ablation — operand-load unrolling (the Fig. 11 step)";
  (* rebuild the 8x12 kernel without the final unroll step *)
  let tr = Exo_ukr_gen.Steps.packed ~kit:Kits.neon_f32 ~mr:8 ~nr:12 in
  let unrolled = Exo_ukr_gen.Steps.final tr in
  let rolled = (List.nth tr (List.length tr - 2)).Exo_ukr_gen.Steps.proc in
  let show name p =
    let impl = KM.of_proc ~name ~mr:8 ~nr:12 p in
    Fmt.pr "%12s: %6.2f GFLOPS solo (census: %a)@." name
      (KM.solo_gflops machine impl ~mu:8 ~nu:12 ~kc:kc_solo)
      T.pp (T.of_proc p).T.steady
  in
  show "rolled" rolled;
  show "unrolled" unrolled;
  Fmt.pr
    "(the census is identical — unrolling matters for real front-ends, not for\n\
    \ the steady-state model; the paper's gcc output is fully unrolled)@.@."

let ablation_prefetch () =
  section "Ablation — C-tile prefetch in the BLIS library kernel (Fig. 14 driver)";
  List.iter
    (fun sz ->
      let on = D.gflops machine (D.blis_lib ()) ~m:sz ~n:sz ~k:sz in
      let off = D.gflops machine (D.alg_blis ()) ~m:sz ~n:sz ~k:sz in
      Fmt.pr "%6d: prefetch on %6.2f | off %6.2f  (+%.1f%%)@." sz on off
        ((on /. off -. 1.0) *. 100.0))
    squarish_sizes;
  Fmt.pr "@."

let ablation_blocking () =
  section "Ablation — analytical blocking vs naive blocking (Low et al. model)";
  let b_model = A.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  Fmt.pr "analytical: %a@." A.pp b_model;
  List.iter
    (fun (name, b) ->
      Fmt.pr "%24s (%a): fits L1/L2/L3 = %b@." name A.pp b
        (A.fits machine ~mr:8 ~nr:12 ~dtype_bytes:4 b))
    [
      ("analytical", b_model);
      ("naive (256,256,256)", { A.mc = 256; kc = 256; nc = 252 });
      ("oversized kc", { A.mc = 896; kc = 4096; nc = 1020 });
    ];
  Fmt.pr "@."

let ablation_selection () =
  section "Ablation — EXO kernel-selection policy (fixed 8x12 vs best-of-family)";
  let fixed_8x12 ~m ~n ~k =
    (* the EXO family restricted to 8x12 for the main region *)
    let kit = Kits.neon_f32 in
    let blocking = A.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
    let regions = D.regions_family ~kit ~mr:8 ~nr:12 ~m ~n in
    let t = D.time_of_regions machine ~regions ~prefetch:false ~m ~n ~k ~blocking in
    2.0 *. float_of_int m *. float_of_int n *. float_of_int k /. t /. 1e9
  in
  Fmt.pr "%22s %12s %12s %10s@." "(m, n, k)" "fixed 8x12" "best" "kernel";
  List.iter
    (fun (m, n, k) ->
      Fmt.pr "%22s %12.2f %12.2f %10s@."
        (Fmt.str "(%d, %d, %d)" m n k)
        (fixed_8x12 ~m ~n ~k)
        (D.gflops machine (D.alg_exo ()) ~m ~n ~k)
        (D.selected_kernel machine (D.alg_exo ()) ~m ~n ~k))
    [ (3136, 64, 64); (49, 2048, 512); (196, 256, 2304); (2000, 2000, 2000) ];
  Fmt.pr "@."

let ablation_f16 () =
  section "Ablation — FP16 kernels (Section III-D, the paper's Exo contribution)";
  (* shapes chosen to keep the register tile within the 32-register file in
     both precisions (an f16 register holds 8 lanes, so the same tile costs
     half the registers) *)
  let shapes = [ (8, 16); (16, 8); (8, 24) ] in
  List.iter
    (fun (mr, nr) ->
      let k32 = Family.generate ~kit:Kits.neon_f32 ~mr ~nr () in
      let k16 = Family.generate ~kit:Kits.neon_f16 ~mr ~nr () in
      let i32 = KM.of_proc ~name:"f32" ~mr ~nr k32.Family.proc in
      let i16 = KM.of_proc ~name:"f16" ~mr ~nr k16.Family.proc in
      Fmt.pr "%2dx%-2d: f32 %6.2f GFLOPS | f16 %6.2f GFLOPS (f16 peak %.1f)@." mr nr
        (KM.solo_gflops machine i32 ~mu:mr ~nu:nr ~kc:kc_solo)
        (KM.solo_gflops M.carmel_fp16 i16 ~mu:mr ~nu:nr ~kc:kc_solo)
        (M.peak_gflops M.carmel_fp16 Exo_ir.Dtype.F16))
    shapes;
  Fmt.pr "@."

let ablation_portability () =
  section "Ablation — one schedule, three ISAs (Section III-C)";
  List.iter
    (fun ((kit : Kits.t), mr, nr, mach) ->
      let k = Family.generate ~kit ~mr ~nr () in
      let impl = KM.of_proc ~name:kit.Kits.name ~mr ~nr k.Family.proc in
      let t = T.of_proc k.Family.proc in
      Fmt.pr "%12s %3dx%-3d [%s]: %6.2f GFLOPS of %6.2f peak; census %a@."
        kit.Kits.name mr nr (Family.style_name k.Family.style)
        (KM.solo_gflops mach impl ~mu:mr ~nu:nr ~kc:256)
        (M.peak_gflops mach kit.Kits.dt)
        T.pp t.T.steady)
    [
      (Kits.neon_f32, 8, 12, machine);
      (Kits.avx512_f32, 32, 6, M.avx512_server);
      (Kits.rvv_f32, 8, 12, M.rvv_core);
      (Kits.neon_f16, 16, 24, M.carmel_fp16);
    ];
  Fmt.pr "@."

let ablation_scoreboard () =
  section
    "Ablation — closed-form model vs instruction-level scoreboard (cycles per \
     k iteration)";
  Fmt.pr "%8s %12s %12s@." "size" "closed-form" "scoreboard";
  List.iter
    (fun (mr, nr) ->
      let k = Family.generate ~mr ~nr () in
      let impl = KM.of_proc ~name:"x" ~mr ~nr k.Family.proc in
      Fmt.pr "%8s %12.2f %12.2f@."
        (Fmt.str "%dx%d" mr nr)
        (KM.cycles_per_iter machine impl)
        (Exo_sim.Scoreboard.cycles_per_iter machine k.Family.proc))
    Family.paper_shapes;
  Fmt.pr "@."

(* A cache-ablation configuration: one (machine, problem, blocking) cell.
   All cells are simulated in parallel on the shared pool — the compressed
   stride-run trace is what makes the real-hierarchy, paper-scale cells
   (≥1000³) affordable at all. *)
type cache_cfg = {
  cc_name : string;
  cc_machine : M.t;
  cc_dims : int * int * int;
  cc_blk : int * int * int;
}

let run_cache_cfg (c : cache_cfg) =
  let m, n, k = c.cc_dims and mc, kc, nc = c.cc_blk in
  (c, Exo_sim.Cache_sim.gemm_trace c.cc_machine ~mc ~kc ~nc ~mr:8 ~nr:12 ~m ~n ~k)

(* The analytical model's DRAM story for a packed GEMM: B is packed (and
   thus read from memory) once, A once per jc pass, and the C tiles stream
   through once per pc pass; the packed buffers fault in once. Conflict
   misses can only add to this compulsory story, so simulated DRAM fills
   must land in a narrow band just above it. *)
let predicted_dram_lines ~(m : int) ~(n : int) ~(k : int) ~(mc : int) ~(kc : int)
    ~(nc : int) ~(line : int) : int =
  let s = 4 in
  let jc_passes = (n + nc - 1) / nc and pc_passes = (k + kc - 1) / kc in
  let elems =
    (k * n) + (jc_passes * m * k) + (pc_passes * m * n) + (mc * kc) + (kc * nc)
  in
  (elems * s) / line

let ablation_cache () =
  section
    "Ablation — analytical blocking on a real LRU cache simulator (stride-\
     compressed traces)";
  let toy =
    {
      machine with
      M.l1 = { M.size_kib = 8; assoc = 4; line_bytes = 64 };
      l2 = { M.size_kib = 64; assoc = 8; line_bytes = 64 };
      l3 = { M.size_kib = 256; assoc = 8; line_bytes = 64 };
    }
  in
  let cfg cc_name cc_machine dims blk =
    { cc_name; cc_machine; cc_dims = dims; cc_blk = blk }
  in
  let toy_b = A.compute toy ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let carmel_b = A.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let blk_of (b : A.blocking) = (b.A.mc, b.A.kc, b.A.nc) in
  (* the heaviest real ResNet50 layer (most GEMM flops) *)
  let resnet_dims =
    List.fold_left
      (fun acc l ->
        let m, n, k = W.gemm_dims l in
        let am, an, ak = acc in
        if m * n * k > am * an * ak then (m, n, k) else acc)
      (1, 1, 1) W.resnet50
  in
  let rm, rn, rk = resnet_dims in
  let paper = 1008 in
  let configs =
    [
      cfg "toy 288³ analytical" toy (288, 288, 288) (blk_of toy_b);
      cfg "toy 288³ no blocking" toy (288, 288, 288) (288, 288, 288);
      cfg "toy 288³ tiny (24,16,24)" toy (288, 288, 288) (24, 16, 24);
      cfg "Carmel 1008³ analytical" machine (paper, paper, paper) (blk_of carmel_b);
      cfg "Carmel 1008³ no blocking" machine (paper, paper, paper)
        (paper, paper, paper);
      cfg
        (Fmt.str "Carmel ResNet50 (%d,%d,%d) analytical" rm rn rk)
        machine resnet_dims (blk_of carmel_b);
      cfg
        (Fmt.str "Carmel ResNet50 (%d,%d,%d) no blocking" rm rn rk)
        machine resnet_dims (rm, rn, rk);
    ]
  in
  let results = Exo_par.Pool.map (pool ()) run_cache_cfg configs in
  List.iter
    (fun (c, s) ->
      Fmt.pr "%-38s %a@." c.cc_name Exo_sim.Cache_sim.pp_stats s)
    results;
  (* validation: on the REAL hierarchy at paper scale the analytical
     blocking must (a) keep the micro-kernel phase L1-resident, (b) land
     its DRAM fills in a narrow band over the compulsory-traffic story, and
     (c) clearly beat no blocking *)
  let find name = List.assq (List.find (fun c -> c.cc_name = name) configs)
                    (List.map (fun (c, s) -> (c, s)) results) in
  let good = find "Carmel 1008³ analytical" in
  let bad = find "Carmel 1008³ no blocking" in
  let mc, kc, nc = blk_of carmel_b in
  let predicted =
    predicted_dram_lines ~m:paper ~n:paper ~k:paper ~mc ~kc ~nc ~line:64
  in
  let open Exo_sim.Cache_sim in
  Fmt.pr "1008³ analytical: predicted ≥%d DRAM lines, simulated %d (%.2fx)@."
    predicted good.dram
    (float_of_int good.dram /. float_of_int predicted);
  assert (kernel_l1_rate good < 0.10);
  assert (good.dram >= predicted);
  assert (float_of_int good.dram < 2.0 *. float_of_int predicted);
  assert (float_of_int good.dram < 0.6 *. float_of_int bad.dram);
  Fmt.pr
    "checks: kernel L1 rate %.2f%% < 10%%; DRAM within 2x of the analytical \
     story; < 0.6x of unblocked@.@."
    (100.0 *. kernel_l1_rate good)

let ablation_variants () =
  section "Ablation — kernel variants (full alpha/beta, beta = 0, non-packed A)";
  let show name p =
    let t = T.of_proc p in
    Fmt.pr "%-34s steady[%a]@.%36s prologue[%a], %d vregs@." name T.pp
      t.T.steady "" T.pp t.T.prologue t.T.vregs_used
  in
  show "packed 8x12 (alpha = beta = 1)"
    (Family.generate ~mr:8 ~nr:12 ()).Family.proc;
  show "packed_full 8x12 (any alpha/beta)"
    (Exo_ukr_gen.Variants.packed_full ~mr:8 ~nr:12 ());
  show "packed_beta0 8x12 (C = A*B)"
    (Exo_ukr_gen.Variants.packed_beta0 ~mr:8 ~nr:12 ());
  show "nopack 8x12 (A unpacked)"
    (Exo_ukr_gen.Variants.nopack ~mr:8 ~nr:12 ());
  Fmt.pr
    "(beta0 trades the 24-load C prologue for 24 register zeroes — the\n\
    \ common DL case; the full kernel adds the scale prologues of Fig. 4)@.@."

let ablation_f16_gemm () =
  section
    "Ablation — end-to-end FP16 GEMM (ALG+EXO with the f16 kit vs f32, full \
     driver)";
  let f16 = D.Exo_family Kits.neon_f16 in
  let f32 = D.alg_exo () in
  List.iter
    (fun (m, n, k) ->
      let g32 = D.gflops machine f32 ~m ~n ~k in
      let g16 = D.gflops M.carmel_fp16 f16 ~m ~n ~k in
      Fmt.pr "%22s: f32 %6.2f | f16 %6.2f GFLOPS (%.2fx, kernel %s)@."
        (Fmt.str "(%d, %d, %d)" m n k)
        g32 g16 (g16 /. g32)
        (D.selected_kernel M.carmel_fp16 f16 ~m ~n ~k))
    [ (2000, 2000, 2000); (784, 512, 128); (196, 256, 2304); (49, 2048, 512) ];
  Fmt.pr "@."

let ablation () =
  ablation_unroll ();
  ablation_prefetch ();
  ablation_blocking ();
  ablation_selection ();
  ablation_f16 ();
  ablation_f16_gemm ();
  ablation_portability ();
  ablation_scoreboard ();
  ablation_cache ();
  ablation_variants ()

let all () =
  fig12 ();
  fig13 ();
  fig14 ();
  tab1 ();
  tab2 ();
  fig15 ();
  fig16 ();
  fig17 ();
  fig18 ();
  ablation ()
