(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 # every table and figure
     dune exec bench/main.exe -- fig13        # one experiment
     dune exec bench/main.exe -- bechamel     # wall-clock Bechamel benches
     dune exec bench/main.exe -- perf         # compiled vs interpreted engine
                                              # (writes BENCH_interp.json)

   Experiments: fig12 fig13 fig14 tab1 tab2 fig15 fig16 fig17 fig18
   ablation bechamel perf lint all *)

open Bechamel
module Btoolkit = Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel benches: one Test.make per table/figure harness plus core   *)
(* compiler micro-benchmarks.                                           *)

let test_of_fun name f = Test.make ~name (Staged.stage f)

let bench_tests () =
  let module F = Exo_ukr_gen.Family in
  let module S = Exo_ukr_gen.Steps in
  let module D = Exo_blis.Driver in
  let module M = Exo_blis.Matrix in
  let module G = Exo_blis.Gemm in
  let machine = Exo_isa.Machine.carmel in
  let st = Random.State.make [| 17 |] in
  let a24 = M.random_int 24 16 st
  and b24 = M.random_int 16 36 st
  and c24 = M.random_int 24 36 st in
  let blocking = { Exo_blis.Analytical.mc = 16; kc = 8; nc = 24 } in
  let exo_ukr = Exo_blis.Registry.exo_ukr () in
  let resnet_layer (l : Exo_workloads.Models.layer) s =
    let m, n, k = Exo_workloads.Models.gemm_dims l in
    ignore (D.time machine s ~m ~n ~k)
  in
  [
    (* core compiler *)
    test_of_fun "sched: full 8x12 pipeline (Section III)" (fun () ->
        ignore (S.packed ~kit:Exo_ukr_gen.Kits.neon_f32 ~mr:8 ~nr:12));
    test_of_fun "sched: generate 1x12 row kernel" (fun () ->
        ignore (F.row Exo_ukr_gen.Kits.neon_f32 ~nr:12));
    test_of_fun "codegen: emit 8x12 C" (fun () ->
        ignore
          (Exo_codegen.C_emit.proc_to_c
             (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "interp: one 8x12 kernel call (kc=32)" (fun () ->
        let ac = Array.make (32 * 8) 1.0
        and bc = Array.make (32 * 12) 1.0
        and c = Array.make (12 * 8) 0.0 in
        exo_ukr ~kc:32 ~mr:8 ~nr:12 ~ac ~bc ~c);
    (* per-table/figure harness computations *)
    test_of_fun "fig12: census of the generated kernel" (fun () ->
        ignore (Exo_sim.Trace.of_proc (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "fig13: solo-mode sweep" (fun () ->
        let base = Exo_blis.Registry.base_8x12 () in
        let blis = Exo_sim.Kernel_model.blis_asm_8x12 base in
        List.iter
          (fun (mu, nu) ->
            ignore (Exo_sim.Kernel_model.solo_gflops machine blis ~mu ~nu ~kc:512);
            ignore
              (Exo_sim.Kernel_model.solo_gflops machine
                 (Exo_blis.Registry.exo_impl ~mr:mu ~nr:nu ())
                 ~mu ~nu ~kc:512))
          F.paper_shapes);
    test_of_fun "fig14: squarish sweep (4 sizes x 4 setups)" (fun () ->
        List.iter
          (fun sz ->
            List.iter
              (fun s -> ignore (D.gflops machine s ~m:sz ~n:sz ~k:sz))
              (D.all_setups ()))
          [ 1000; 2000; 4000; 5000 ]);
    test_of_fun "tab1: recompute Table I via im2row dims" (fun () ->
        List.iter
          (fun l -> ignore (Exo_workloads.Models.gemm_dims l))
          Exo_workloads.Models.resnet50);
    test_of_fun "tab2: recompute Table II via im2row dims" (fun () ->
        List.iter
          (fun l -> ignore (Exo_workloads.Models.gemm_dims l))
          Exo_workloads.Models.vgg16);
    test_of_fun "fig15/16: ResNet50 sweep (20 layers x 4 setups)" (fun () ->
        List.iter
          (fun l -> List.iter (resnet_layer l) (D.all_setups ()))
          Exo_workloads.Models.resnet50);
    test_of_fun "fig17/18: VGG16 sweep (9 layers x 4 setups)" (fun () ->
        List.iter
          (fun l -> List.iter (resnet_layer l) (D.all_setups ()))
          Exo_workloads.Models.vgg16);
    (* numeric substrate *)
    test_of_fun "gemm: 24x36x16 blocked + interpreted Exo kernels" (fun () ->
        let c = M.copy c24 in
        G.blis ~blocking ~mr:8 ~nr:12 ~ukr:exo_ukr a24 b24 c);
    test_of_fun "gemm: 24x36x16 naive f32" (fun () ->
        let c = M.copy c24 in
        G.naive_f32 a24 b24 c);
    test_of_fun "workloads: im2row 3x3 on 28x28x32" (fun () ->
        let spec =
          { Exo_workloads.Conv.cin = 32; cout = 16; kh = 3; kw = 3; stride = 1; pad = 1 }
        in
        let input = Exo_workloads.Conv.tensor_create ~init:1.0 28 28 32 in
        ignore (Exo_workloads.Conv.im2row spec input));
    test_of_fun "analytical: blocking for 8x12 on Carmel" (fun () ->
        ignore (Exo_blis.Analytical.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4));
    test_of_fun "scoreboard: 64 iterations of the 8x12 k-loop" (fun () ->
        ignore
          (Exo_sim.Scoreboard.cycles_per_iter machine
             (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "cache-sim: 96^3 GEMM trace through 3-level LRU" (fun () ->
        ignore
          (Exo_sim.Cache_sim.gemm_trace machine ~mc:64 ~kc:64 ~nc:96 ~mr:8 ~nr:12
             ~m:96 ~n:96 ~k:96));
    test_of_fun "tuner: price one candidate on one DL layer" (fun () ->
        ignore (Exo_blis.Tuner.evaluate machine ~mr:8 ~nr:12 ~m:784 ~n:512 ~k:256));
  ]

let run_bechamel () =
  Fmt.pr "Bechamel wall-clock benchmarks (monotonic clock, ns/run)@.";
  Fmt.pr "%s@." (String.make 78 '-');
  let tests = bench_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Btoolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Fmt.pr "%-55s %12.1f ns/run@." name t
          | _ -> Fmt.pr "%-55s %12s@." name "n/a")
        analyzed)
    tests;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* perf: the compiled execution engine vs the tree-walking interpreter  *)
(* on the paper's base kernel, plus a tuner-sweep timing. Writes the    *)
(* measurements to BENCH_interp.json.                                   *)

(** Adaptive timing: run [f] until at least [min_time] CPU-seconds have
    accumulated, return seconds per run. *)
let time_runs ?(min_time = 0.3) (f : unit -> unit) : float =
  f ();
  (* warm-up: caches, compilation *)
  let rec go n =
    let t0 = Sys.time () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= min_time then dt /. float_of_int n else go (n * 4)
  in
  go 1

let run_perf () =
  let module R = Exo_blis.Registry in
  let machine = Exo_isa.Machine.carmel in
  let kc = 512 and mr = 8 and nr = 12 in
  Fmt.pr "Execution-engine benchmark: 8x12 f32 kernel, one call at kc=%d@." kc;
  Fmt.pr "%s@." (String.make 78 '-');
  let st = Random.State.make [| 42 |] in
  let mk n = Array.init n (fun _ -> float_of_int (Random.State.int st 7 - 3)) in
  let ac = mk (kc * mr) and bc = mk (kc * nr) in
  let c0 = mk (nr * mr) in
  let compiled = R.exo_ukr () and interp = R.exo_ukr_interp () in
  (* sanity: both engines produce the identical C tile *)
  let c1 = Array.copy c0 and c2 = Array.copy c0 in
  compiled ~kc ~mr ~nr ~ac ~bc ~c:c1;
  interp ~kc ~mr ~nr ~ac ~bc ~c:c2;
  if c1 <> c2 then failwith "perf: compiled and interpreted kernels disagree";
  Fmt.pr "engines agree bit-exactly on the C tile@.";
  let t_compiled =
    time_runs (fun () ->
        let c = Array.copy c0 in
        compiled ~kc ~mr ~nr ~ac ~bc ~c)
  in
  let t_interp =
    time_runs (fun () ->
        let c = Array.copy c0 in
        interp ~kc ~mr ~nr ~ac ~bc ~c)
  in
  let speedup = t_interp /. t_compiled in
  Fmt.pr "tree-walking interpreter : %12.1f us/call@." (t_interp *. 1e6);
  Fmt.pr "compiled closures        : %12.1f us/call@." (t_compiled *. 1e6);
  Fmt.pr "speedup                  : %12.1fx %s@." speedup
    (if speedup >= 10.0 then "(>= 10x: ok)" else "(below the 10x target!)");
  (* tuner sweep: time fresh problems (distinct k) so the memo is cold *)
  let k_base = ref 100 in
  let t_sweep =
    time_runs ~min_time:0.2 (fun () ->
        incr k_base;
        ignore (Exo_blis.Tuner.sweep machine ~m:784 ~n:512 ~k:!k_base))
  in
  Fmt.pr "tuner sweep (cold memo)  : %12.1f us/sweep@." (t_sweep *. 1e6);
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc
    "{\n\
    \  \"kernel\": \"uk_%dx%d_neon-f32\",\n\
    \  \"kc\": %d,\n\
    \  \"interpreted_us_per_call\": %.3f,\n\
    \  \"compiled_us_per_call\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"tuner_sweep_cold_us\": %.3f\n\
     }\n"
    mr nr kc (t_interp *. 1e6) (t_compiled *. 1e6) speedup (t_sweep *. 1e6);
  close_out oc;
  Fmt.pr "wrote BENCH_interp.json@.@."

(* ------------------------------------------------------------------ *)
(* lint: the static Fig. 12 gate — every generated kernel must carry    *)
(* its bounds certificate, fit the register file, match the expected    *)
(* steady-state census and write only C. Exits 1 on any failure.        *)

let run_lint () =
  let module L = Exo_ukr_gen.Lint in
  Fmt.pr "Static kernel lint (Fig. 12 properties, no simulation)@.";
  Fmt.pr "%s@." (String.make 78 '-');
  let o = L.run () in
  Fmt.pr "%a@.@." L.pp_outcome o;
  if not (L.all_ok o) then begin
    Fmt.epr "lint gate FAILED: %d kernel(s)@." (L.failures o);
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let run = function
    | "fig12" -> Experiments.fig12 ()
    | "fig13" -> Experiments.fig13 ()
    | "fig14" -> Experiments.fig14 ()
    | "tab1" -> Experiments.tab1 ()
    | "tab2" -> Experiments.tab2 ()
    | "fig15" -> Experiments.fig15 ()
    | "fig16" -> Experiments.fig16 ()
    | "fig17" -> Experiments.fig17 ()
    | "fig18" -> Experiments.fig18 ()
    | "ablation" -> Experiments.ablation ()
    | "bechamel" -> run_bechamel ()
    | "perf" -> run_perf ()
    | "lint" -> run_lint ()
    | "all" ->
        run_lint ();
        Experiments.all ();
        run_bechamel ()
    | other ->
        Fmt.epr
          "unknown experiment %S (expected figNN, tabN, ablation, bechamel, perf, \
           lint, all)@."
          other;
        exit 2
  in
  match args with [] -> run "all" | l -> List.iter run l
