(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 # every table and figure
     dune exec bench/main.exe -- fig13        # one experiment
     dune exec bench/main.exe -- bechamel     # wall-clock Bechamel benches
     dune exec bench/main.exe -- perf         # compiled vs interpreted engine
                                              # (writes BENCH_interp.json)
     dune exec bench/main.exe -- perf-sim     # compressed vs element cache sim
                                              # + 1-vs-N-domain sweeps
                                              # (writes BENCH_sim.json)
     dune exec bench/main.exe -- perf-gemm    # executable GEMM: specialized
                                              # kernel tier, paper-scale GEMM,
                                              # pool invariance, batched layers
                                              # (writes BENCH_gemm.json)
     dune exec bench/main.exe -- perf-serve   # cold vs cache-hydrated builds,
                                              # warm daemon request latency
                                              # (writes BENCH_serve.json)
     dune exec bench/main.exe -- -j 4 all     # pool width for parallel sweeps
     dune exec bench/main.exe -- -profile lint # obs tracing + profile report
     dune exec bench/main.exe -- -ledger runs.jsonl perf-gemm
                                              # append a run-ledger record
                                              # (or set $UKRGEN_LEDGER)

   Experiments: fig12 fig13 fig14 tab1 tab2 fig15 fig16 fig17 fig18
   ablation bechamel perf perf-sim[-smoke] perf-gemm[-smoke]
   perf-serve[-smoke] lint all *)

open Bechamel
module Btoolkit = Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel benches: one Test.make per table/figure harness plus core   *)
(* compiler micro-benchmarks.                                           *)

let test_of_fun name f = Test.make ~name (Staged.stage f)

let bench_tests () =
  let module F = Exo_ukr_gen.Family in
  let module S = Exo_ukr_gen.Steps in
  let module D = Exo_blis.Driver in
  let module M = Exo_blis.Matrix in
  let module G = Exo_blis.Gemm in
  let machine = Exo_isa.Machine.carmel in
  let st = Random.State.make [| 17 |] in
  let a24 = M.random_int 24 16 st
  and b24 = M.random_int 16 36 st
  and c24 = M.random_int 24 36 st in
  let blocking = { Exo_blis.Analytical.mc = 16; kc = 8; nc = 24 } in
  let exo_ukr = Exo_blis.Registry.exo_ukr () in
  let resnet_layer (l : Exo_workloads.Models.layer) s =
    let m, n, k = Exo_workloads.Models.gemm_dims l in
    ignore (D.time machine s ~m ~n ~k)
  in
  [
    (* core compiler *)
    test_of_fun "sched: full 8x12 pipeline (Section III)" (fun () ->
        ignore (S.packed ~kit:Exo_ukr_gen.Kits.neon_f32 ~mr:8 ~nr:12));
    test_of_fun "sched: generate 1x12 row kernel" (fun () ->
        ignore (F.row Exo_ukr_gen.Kits.neon_f32 ~nr:12));
    test_of_fun "codegen: emit 8x12 C" (fun () ->
        ignore
          (Exo_codegen.C_emit.proc_to_c
             (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "interp: one 8x12 kernel call (kc=32)" (fun () ->
        let ac = Array.make (32 * 8) 1.0
        and bc = Array.make (32 * 12) 1.0
        and c = Array.make (12 * 8) 0.0 in
        exo_ukr ~kc:32 ~mr:8 ~nr:12 ~ac ~ao:0 ~bc ~bo:0 ~c);
    (* per-table/figure harness computations *)
    test_of_fun "fig12: census of the generated kernel" (fun () ->
        ignore (Exo_sim.Trace.of_proc (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "fig13: solo-mode sweep" (fun () ->
        let base = Exo_blis.Registry.base_8x12 () in
        let blis = Exo_sim.Kernel_model.blis_asm_8x12 base in
        List.iter
          (fun (mu, nu) ->
            ignore (Exo_sim.Kernel_model.solo_gflops machine blis ~mu ~nu ~kc:512);
            ignore
              (Exo_sim.Kernel_model.solo_gflops machine
                 (Exo_blis.Registry.exo_impl ~mr:mu ~nr:nu ())
                 ~mu ~nu ~kc:512))
          F.paper_shapes);
    test_of_fun "fig14: squarish sweep (4 sizes x 4 setups)" (fun () ->
        List.iter
          (fun sz ->
            List.iter
              (fun s -> ignore (D.gflops machine s ~m:sz ~n:sz ~k:sz))
              (D.all_setups ()))
          [ 1000; 2000; 4000; 5000 ]);
    test_of_fun "tab1: recompute Table I via im2row dims" (fun () ->
        List.iter
          (fun l -> ignore (Exo_workloads.Models.gemm_dims l))
          Exo_workloads.Models.resnet50);
    test_of_fun "tab2: recompute Table II via im2row dims" (fun () ->
        List.iter
          (fun l -> ignore (Exo_workloads.Models.gemm_dims l))
          Exo_workloads.Models.vgg16);
    test_of_fun "fig15/16: ResNet50 sweep (20 layers x 4 setups)" (fun () ->
        List.iter
          (fun l -> List.iter (resnet_layer l) (D.all_setups ()))
          Exo_workloads.Models.resnet50);
    test_of_fun "fig17/18: VGG16 sweep (9 layers x 4 setups)" (fun () ->
        List.iter
          (fun l -> List.iter (resnet_layer l) (D.all_setups ()))
          Exo_workloads.Models.vgg16);
    (* numeric substrate *)
    test_of_fun "gemm: 24x36x16 blocked + interpreted Exo kernels" (fun () ->
        let c = M.copy c24 in
        G.blis ~blocking ~mr:8 ~nr:12 ~ukr:exo_ukr a24 b24 c);
    test_of_fun "gemm: 24x36x16 naive f32" (fun () ->
        let c = M.copy c24 in
        G.naive_f32 a24 b24 c);
    test_of_fun "workloads: im2row 3x3 on 28x28x32" (fun () ->
        let spec =
          { Exo_workloads.Conv.cin = 32; cout = 16; kh = 3; kw = 3; stride = 1; pad = 1 }
        in
        let input = Exo_workloads.Conv.tensor_create ~init:1.0 28 28 32 in
        ignore (Exo_workloads.Conv.im2row spec input));
    test_of_fun "analytical: blocking for 8x12 on Carmel" (fun () ->
        ignore (Exo_blis.Analytical.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4));
    test_of_fun "scoreboard: 64 iterations of the 8x12 k-loop" (fun () ->
        ignore
          (Exo_sim.Scoreboard.cycles_per_iter machine
             (Exo_blis.Registry.exo_kernel ~mr:8 ~nr:12 ()).F.proc));
    test_of_fun "cache-sim: 96^3 GEMM trace through 3-level LRU" (fun () ->
        ignore
          (Exo_sim.Cache_sim.gemm_trace machine ~mc:64 ~kc:64 ~nc:96 ~mr:8 ~nr:12
             ~m:96 ~n:96 ~k:96));
    test_of_fun "tuner: price one candidate on one DL layer" (fun () ->
        ignore (Exo_blis.Tuner.evaluate machine ~mr:8 ~nr:12 ~m:784 ~n:512 ~k:256));
  ]

let run_bechamel () =
  Fmt.pr "Bechamel wall-clock benchmarks (monotonic clock, ns/run)@.";
  Fmt.pr "%s@." (String.make 78 '-');
  let tests = bench_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Btoolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Fmt.pr "%-55s %12.1f ns/run@." name t
          | _ -> Fmt.pr "%-55s %12s@." name "n/a")
        analyzed)
    tests;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Shared provenance metadata for every BENCH_*.json this harness       *)
(* writes: the one Obs.Meta writer (shared with ukrgen lint --tiers     *)
(* --json), with the ocamlopt flambda flag added — without flambda the  *)
(* float-array tiers pay boxing the Bigarray tier does not, so GFLOPS   *)
(* numbers are only comparable across hosts with this block.            *)

let meta_json () =
  let module Host = Exo_native.Host in
  let host_cc = match Host.cc () with Some p -> p | None -> "none" in
  let host_isa =
    match Host.isas () with
    | [] -> "generic"
    | l -> String.concat "," (List.map Host.isa_name l)
  in
  Exo_obs.Obs.Meta.json ~flambda:Config.flambda ~host_cc ~host_isa
    ~pool_jobs:(Exo_par.Pool.default_jobs ()) ()

(* ------------------------------------------------------------------ *)
(* The run ledger: when a path is configured ([-ledger FILE] or          *)
(* $UKRGEN_LEDGER), every perf subcommand appends one schema-versioned   *)
(* JSONL record — keyed by the same provenance fields as meta_json —     *)
(* that [ukrgen report] later renders and gates against the host's       *)
(* baseline window.                                                     *)

module Ledger = Exo_ledger.Ledger

let ledger_path : string option ref = ref None

let ledger_append ~bench metrics =
  match !ledger_path with
  | None -> ()
  | Some path ->
      let r =
        Ledger.record ~flambda:Config.flambda
          ~pool_jobs:(Exo_par.Pool.default_jobs ()) ~bench metrics
      in
      Ledger.append ~path r;
      Fmt.pr "ledger: appended %S record to %s@." bench path

(* ------------------------------------------------------------------ *)
(* perf: the compiled execution engine vs the tree-walking interpreter  *)
(* on the paper's base kernel, plus a tuner-sweep timing. Writes the    *)
(* measurements to BENCH_interp.json.                                   *)

(** Adaptive timing: run [f] until at least [min_time] CPU-seconds have
    accumulated, return seconds per run. *)
let time_runs ?(min_time = 0.3) (f : unit -> unit) : float =
  f ();
  (* warm-up: caches, compilation *)
  let rec go n =
    let t0 = Sys.time () in
    for _ = 1 to n do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= min_time then dt /. float_of_int n else go (n * 4)
  in
  go 1

let run_perf () =
  let module R = Exo_blis.Registry in
  let machine = Exo_isa.Machine.carmel in
  let kc = 512 and mr = 8 and nr = 12 in
  Fmt.pr "Execution-engine benchmark: 8x12 f32 kernel, one call at kc=%d@." kc;
  Fmt.pr "%s@." (String.make 78 '-');
  let st = Random.State.make [| 42 |] in
  let mk n = Array.init n (fun _ -> float_of_int (Random.State.int st 7 - 3)) in
  let ac = mk (kc * mr) and bc = mk (kc * nr) in
  let c0 = mk (nr * mr) in
  let compiled = R.exo_ukr_closure () and interp = R.exo_ukr_interp () in
  (* sanity: both engines produce the identical C tile *)
  let c1 = Array.copy c0 and c2 = Array.copy c0 in
  compiled ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c:c1;
  interp ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c:c2;
  if c1 <> c2 then failwith "perf: compiled and interpreted kernels disagree";
  Fmt.pr "engines agree bit-exactly on the C tile@.";
  let t_compiled =
    time_runs (fun () ->
        let c = Array.copy c0 in
        compiled ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c)
  in
  let t_interp =
    time_runs (fun () ->
        let c = Array.copy c0 in
        interp ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c)
  in
  let speedup = t_interp /. t_compiled in
  Fmt.pr "tree-walking interpreter : %12.1f us/call@." (t_interp *. 1e6);
  Fmt.pr "compiled closures        : %12.1f us/call@." (t_compiled *. 1e6);
  Fmt.pr "speedup                  : %12.1fx %s@." speedup
    (if speedup >= 10.0 then "(>= 10x: ok)" else "(below the 10x target!)");
  (* tuner sweep: time fresh problems (distinct k) so the memo is cold *)
  let k_base = ref 100 in
  let t_sweep =
    time_runs ~min_time:0.2 (fun () ->
        incr k_base;
        ignore (Exo_blis.Tuner.sweep machine ~m:784 ~n:512 ~k:!k_base))
  in
  Fmt.pr "tuner sweep (cold memo)  : %12.1f us/sweep@." (t_sweep *. 1e6);
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc
    "{\n\
    \  %s,\n\
    \  \"kernel\": \"uk_%dx%d_neon-f32\",\n\
    \  \"kc\": %d,\n\
    \  \"interpreted_us_per_call\": %.3f,\n\
    \  \"compiled_us_per_call\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"tuner_sweep_cold_us\": %.3f\n\
     }\n"
    (meta_json ()) mr nr kc (t_interp *. 1e6) (t_compiled *. 1e6) speedup
    (t_sweep *. 1e6);
  close_out oc;
  ledger_append ~bench:"perf"
    [
      Ledger.metric ~unit_:"us" Ledger.Lower "interp.compiled_us_per_call"
        (t_compiled *. 1e6);
      Ledger.metric ~unit_:"us" Ledger.Info "interp.interpreted_us_per_call"
        (t_interp *. 1e6);
      Ledger.metric ~unit_:"x" Ledger.Higher "interp.speedup" speedup;
      Ledger.metric ~unit_:"us" Ledger.Lower "tuner.sweep_cold_us"
        (t_sweep *. 1e6);
    ];
  Fmt.pr "wrote BENCH_interp.json@.@."

(* ------------------------------------------------------------------ *)
(* perf-sim: the simulation/sweep engine benchmark. Measures the        *)
(* stride-compressed cache simulator against the element-level oracle   *)
(* (same statistics, fraction of the work) and the domain-parallel      *)
(* sweep engine at 1 vs N domains (byte-identical outcomes). Writes     *)
(* BENCH_sim.json.                                                      *)

let run_perf_sim ?(smoke = false) () =
  let module CS = Exo_sim.Cache_sim in
  let module L = Exo_ukr_gen.Lint in
  let machine = Exo_isa.Machine.carmel in
  let min_time = if smoke then 0.05 else 0.3 in
  (* headline trace: the real Carmel hierarchy at the paper's ≥1000³ scale
     under the analytical blocking — exactly the cell the cache ablation
     validates. Smoke mode shrinks to a toy hierarchy and 144³ so the CI
     gate stays fast. *)
  let sim_machine, dim =
    if smoke then
      ( {
          machine with
          Exo_isa.Machine.l1 =
            { Exo_isa.Machine.size_kib = 8; assoc = 4; line_bytes = 64 };
          l2 = { Exo_isa.Machine.size_kib = 64; assoc = 8; line_bytes = 64 };
          l3 = { Exo_isa.Machine.size_kib = 256; assoc = 8; line_bytes = 64 };
        },
        144 )
    else (machine, 1008)
  in
  let b = Exo_blis.Analytical.compute sim_machine ~mr:8 ~nr:12 ~dtype_bytes:4 in
  let mc = b.Exo_blis.Analytical.mc
  and kc = b.Exo_blis.Analytical.kc
  and nc = b.Exo_blis.Analytical.nc in
  Fmt.pr "Simulation & sweep-engine benchmark%s@." (if smoke then " (smoke)" else "");
  Fmt.pr "%s@." (String.make 78 '-');
  Fmt.pr "trace: %s %d³, blocking (mc=%d, kc=%d, nc=%d), 8x12 f32 kernel@."
    (if smoke then "toy hierarchy" else "Carmel")
    dim mc kc nc;
  (* 1. compressed vs element-level cache simulation *)
  let trace () = CS.gemm_trace sim_machine ~mc ~kc ~nc ~mr:8 ~nr:12 ~m:dim ~n:dim ~k:dim in
  let trace_element () =
    CS.gemm_trace_element sim_machine ~mc ~kc ~nc ~mr:8 ~nr:12 ~m:dim ~n:dim ~k:dim
  in
  let fast = trace () and slow = trace_element () in
  if fast <> slow then failwith "perf-sim: compressed and element stats disagree";
  Fmt.pr "compressed and element-level paths agree on every statistic@.";
  (* the element oracle at paper scale runs for seconds per trace, so
     adaptive accumulation is replaced by explicit best-of-k trials *)
  let best_of k f =
    let samples = ref [] in
    for _ = 1 to k do
      let t0 = Sys.time () in
      ignore (f ());
      samples := (Sys.time () -. t0) :: !samples
    done;
    (List.fold_left Float.min infinity !samples, List.rev !samples)
  in
  let t_fast, fast_samples = best_of 3 trace in
  let t_slow, _ = best_of 2 trace_element in
  let refs = float_of_int fast.CS.refs in
  let sim_speedup = t_slow /. t_fast in
  Fmt.pr "element oracle  : %10.1f ms/trace  (%8.1f Mrefs/s)@." (t_slow *. 1e3)
    (refs /. t_slow /. 1e6);
  Fmt.pr "compressed runs : %10.1f ms/trace  (%8.1f Mrefs/s)@." (t_fast *. 1e3)
    (refs /. t_fast /. 1e6);
  Fmt.pr "speedup         : %10.1fx %s@." sim_speedup
    (if sim_speedup >= 10.0 then "(>= 10x: ok)" else "(below the 10x target!)");
  (* 2. the parallel sweep engine: lint gate and tuner sweep at 1 vs N *)
  let domains = Domain.recommended_domain_count () in
  let jobs_n = max 2 (Exo_par.Pool.default_jobs ()) in
  let o1 = ref None and on = ref None in
  let t_lint1 = time_runs ~min_time (fun () -> o1 := Some (L.run ~jobs:1 ())) in
  let t_lintn = time_runs ~min_time (fun () -> on := Some (L.run ~jobs:jobs_n ())) in
  if !o1 <> !on then failwith "perf-sim: lint outcomes differ across pool widths";
  Fmt.pr "lint gate (%d kernels): 1 domain %.1f ms | %d domains %.1f ms (%.2fx); \
          outcomes identical@."
    (List.length (Option.get !o1).L.entries)
    (t_lint1 *. 1e3) jobs_n (t_lintn *. 1e3) (t_lint1 /. t_lintn);
  let sweep_problem jobs =
    Exo_blis.Tuner.clear_cache ();
    Exo_blis.Tuner.sweep machine ~jobs ~m:784 ~n:512 ~k:256
  in
  let s1 = ref [] and sn = ref [] in
  let t_sweep1 = time_runs ~min_time (fun () -> s1 := sweep_problem 1) in
  let t_sweepn = time_runs ~min_time (fun () -> sn := sweep_problem jobs_n) in
  if !s1 <> !sn then failwith "perf-sim: tuner rankings differ across pool widths";
  Fmt.pr "tuner sweep: 1 domain %.3f ms | %d domains %.3f ms (%.2fx); rankings \
          identical@."
    (t_sweep1 *. 1e3) jobs_n (t_sweepn *. 1e3) (t_sweep1 /. t_sweepn);
  let oc = open_out "BENCH_sim.json" in
  Printf.fprintf oc
    "{\n\
    \  %s,\n\
    \  \"smoke\": %b,\n\
    \  \"trace_machine\": \"%s\",\n\
    \  \"trace_blocking\": [%d, %d, %d],\n\
    \  \"trace_dim\": %d,\n\
    \  \"trace_refs\": %d,\n\
    \  \"element_mrefs_per_sec\": %.2f,\n\
    \  \"compressed_mrefs_per_sec\": %.2f,\n\
    \  \"compressed_speedup\": %.2f,\n\
    \  \"domains_available\": %d,\n\
    \  \"pool_jobs\": %d,\n\
    \  \"lint_ms_1job\": %.2f,\n\
    \  \"lint_ms_njobs\": %.2f,\n\
    \  \"lint_speedup\": %.2f,\n\
    \  \"lint_outcomes_identical\": true,\n\
    \  \"tuner_ms_1job\": %.3f,\n\
    \  \"tuner_ms_njobs\": %.3f,\n\
    \  \"tuner_speedup\": %.2f,\n\
    \  \"tuner_rankings_identical\": true\n\
     }\n"
    (meta_json ()) smoke
    (if smoke then "toy" else "carmel")
    mc kc nc dim fast.CS.refs (refs /. t_slow /. 1e6) (refs /. t_fast /. 1e6)
    sim_speedup domains jobs_n (t_lint1 *. 1e3) (t_lintn *. 1e3)
    (t_lint1 /. t_lintn) (t_sweep1 *. 1e3) (t_sweepn *. 1e3)
    (t_sweep1 /. t_sweepn);
  close_out oc;
  (* smoke runs trace a toy hierarchy at 144³ — a different scale entirely —
     so they ledger under their own bench name and never mix baselines with
     full runs *)
  ledger_append ~bench:(if smoke then "perf-sim-smoke" else "perf-sim")
    [
      Ledger.metric_of_samples ~unit_:"Mrefs/s" Ledger.Higher
        "sim.compressed_mrefs_per_sec"
        (List.map (fun t -> refs /. t /. 1e6) fast_samples);
      Ledger.metric ~unit_:"Mrefs/s" Ledger.Info "sim.element_mrefs_per_sec"
        (refs /. t_slow /. 1e6);
      Ledger.metric ~unit_:"x" Ledger.Higher "sim.compressed_speedup" sim_speedup;
      Ledger.metric ~unit_:"ms" Ledger.Lower "lint.ms_njobs" (t_lintn *. 1e3);
      Ledger.metric ~unit_:"ms" Ledger.Lower "tuner.ms_njobs" (t_sweepn *. 1e3);
    ];
  Fmt.pr "wrote BENCH_sim.json@.@."

(* ------------------------------------------------------------------ *)
(* perf-gemm: the executable GEMM path. Measures the three kernel tiers *)
(* (closure engine, flat tape, monomorphized Bigarray) on one 8x12 call *)
(* at paper kc, times a full paper-scale GEMM through the Bigarray      *)
(* macro-kernel (validated exactly against naive f32 AND the flat tier, *)
(* with zero closure fallbacks demanded of the complete table), checks  *)
(* bit-identical C at pool widths 1/2/4 over the (jc x ic) task grid —  *)
(* including a small-n ResNet50 layer shape where jc alone is one task  *)
(* — and runs a DNN workload slice through Gemm.batch_ba. Writes        *)
(* BENCH_gemm.json; any numeric mismatch, fallback dispatch, or width   *)
(* divergence is a hard process failure so CI can assert via exit code. *)

let run_perf_gemm ?(smoke = false) () =
  let module R = Exo_blis.Registry in
  let module M = Exo_blis.Matrix in
  let module G = Exo_blis.Gemm in
  let module W = Exo_workloads.Models in
  let machine = Exo_isa.Machine.carmel in
  let min_time = if smoke then 0.05 else 0.3 in
  Fmt.pr "Executable-GEMM benchmark%s@." (if smoke then " (smoke)" else "");
  Fmt.pr "%s@." (String.make 78 '-');
  (* 1. one micro-kernel call: specialized flat-loop tier vs the closure
     engine, at the paper blocking's kc *)
  let kc = if smoke then 128 else 512 in
  let mr = 8 and nr = 12 in
  let st = Random.State.make [| 42 |] in
  let mk n = Array.init n (fun _ -> float_of_int (Random.State.int st 7 - 3)) in
  let ac = mk (kc * mr) and bc = mk (kc * nr) in
  let c0 = mk (nr * mr) in
  let fast =
    match R.exo_ukr_fast ~mr ~nr () with
    | Some u -> u
    | None -> failwith "perf-gemm: 8x12 kernel rejected by the specialized tier"
  in
  let closure = R.exo_ukr_closure () in
  let c1 = Array.copy c0 and c2 = Array.copy c0 in
  fast ~kc ~ac ~ao:0 ~bc ~bo:0 ~c:c1;
  closure ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c:c2;
  if c1 <> c2 then failwith "perf-gemm: specialized and closure kernels disagree";
  Fmt.pr "kernel tiers agree bit-exactly on the C tile@.";
  let t_fast =
    time_runs ~min_time (fun () ->
        let c = Array.copy c0 in
        fast ~kc ~ac ~ao:0 ~bc ~bo:0 ~c)
  in
  let t_closure =
    time_runs ~min_time (fun () ->
        let c = Array.copy c0 in
        closure ~kc ~mr ~nr ~ac ~ao:0 ~bc ~bo:0 ~c)
  in
  let ukr_speedup = t_closure /. t_fast in
  (* the monomorphized Bigarray tier on the same tile, through the real
     dispatch table (counting wrapper included) *)
  let table = R.exo_table ~mr ~nr () in
  (* static translation validation, cross-checked against the dynamic
     integer certification: every table entry must prove bounds, write-set
     containment and accumulation shape (tierlint), the registry's own
     build-time verdicts must agree, and the independently re-run dynamic
     probe must accept every statically proved entry. Any disagreement
     between the two certification routes is a hard failure — it means one
     of them is wrong. *)
  let module L = Exo_ukr_gen.Lint in
  let tiers =
    L.run_tiers ~kits:[ Exo_ukr_gen.Kits.neon_f32 ] ~jobs:1 ~mr ~nr ()
  in
  let tk = List.hd tiers.L.tier_kits in
  let reg_certified = Array.for_all Fun.id table.R.t_proved in
  Fmt.pr
    "static tier validation: proved %d/%d, probe disagreements %d; registry \
     build: %s@."
    tk.L.tk_proved tk.L.tk_total tk.L.tk_disagreements
    (if reg_certified then "every entry statically certified"
     else "UNPROVED entries");
  if not (L.tiers_ok tiers) then
    failwith
      "perf-gemm: static tier validation failed or disagreed with the \
       dynamic probe";
  if not reg_certified then
    failwith
      "perf-gemm: registry served a table entry without a static certificate";
  (* the Bigarray-tier entry (pre-upgrade bank): the native tier's A side *)
  let ba_ukr = R.table_base_entry table ~mr ~nr in
  let to_ba arr =
    let b =
      Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout
        (Array.length arr)
    in
    Array.iteri (Bigarray.Array1.set b) arr;
    b
  in
  let ac_ba = to_ba ac and bc_ba = to_ba bc in
  let c3 = to_ba c0 in
  ba_ukr ~kc ~ac:ac_ba ~ao:0 ~bc:bc_ba ~bo:0 ~c:c3 ~co:0;
  Array.iteri
    (fun i v ->
      if not (Float.equal (Bigarray.Array1.get c3 i) v) then
        failwith "perf-gemm: Bigarray and closure kernels disagree")
    c1;
  Fmt.pr "kernel tiers (incl. Bigarray) agree bit-exactly on the C tile@.";
  let t_ba =
    let c = to_ba c0 in
    time_runs ~min_time (fun () ->
        ba_ukr ~kc ~ac:ac_ba ~ao:0 ~bc:bc_ba ~bo:0 ~c ~co:0)
  in
  let ba_speedup = t_closure /. t_ba in
  (* the serving table entry: JIT'd machine code when the native upgrade
     certified this host, the Bigarray executor otherwise *)
  let nat_info = table.R.t_native_info in
  let serving_ukr = R.table_entry table ~mr ~nr in
  let c4 = to_ba c0 in
  serving_ukr ~kc ~ac:ac_ba ~ao:0 ~bc:bc_ba ~bo:0 ~c:c4 ~co:0;
  Array.iteri
    (fun i v ->
      if not (Float.equal (Bigarray.Array1.get c4 i) v) then
        failwith "perf-gemm: serving (native) and closure kernels disagree")
    c1;
  let t_native_ukr =
    let c = to_ba c0 in
    time_runs ~min_time (fun () ->
        serving_ukr ~kc ~ac:ac_ba ~ao:0 ~bc:bc_ba ~bo:0 ~c ~co:0)
  in
  Fmt.pr "native tier        : %s (target %s, cc %s, %d/%d entries, %s)@."
    (if nat_info.R.ni_enabled then "enabled" else "DEGRADED")
    nat_info.R.ni_target nat_info.R.ni_cc nat_info.R.ni_entries (mr * nr)
    nat_info.R.ni_reason;
  Fmt.pr "closure engine     : %12.1f us/call@." (t_closure *. 1e6);
  Fmt.pr "specialized lowering: %11.1f us/call@." (t_fast *. 1e6);
  Fmt.pr "monomorphized ba   : %12.1f us/call@." (t_ba *. 1e6);
  Fmt.pr "native jit         : %12.1f us/call@." (t_native_ukr *. 1e6);
  Fmt.pr "speedup (flat)     : %12.1fx %s@." ukr_speedup
    (if ukr_speedup >= 5.0 then "(>= 5x: ok)" else "(below the 5x target!)");
  Fmt.pr "speedup (bigarray) : %12.1fx vs closure, %.1fx vs flat@." ba_speedup
    (t_fast /. t_ba);
  Fmt.pr "speedup (native)   : %12.1fx vs bigarray (per ukr call)@."
    (t_ba /. t_native_ukr);
  (* 2. a full paper-scale GEMM through the macro-kernel, validated exactly
     against the f32-rounded naive reference, then re-run at pool widths
     2 and 4 — C must be bit-identical at every width *)
  let dim = if smoke then 144 else 1008 in
  let blocking = Exo_blis.Analytical.compute machine ~mr ~nr ~dtype_bytes:4 in
  let a = M.random_int dim dim st and b = M.random_int dim dim st in
  let c_init = M.random_int dim dim st in
  let exo_ukr = R.exo_ukr () in
  let kernels = R.exo_bank ~mr ~nr () in
  let run_width jobs =
    let c = M.copy c_init in
    let pool = Exo_par.Pool.create ~jobs () in
    let t0 = Unix.gettimeofday () in
    G.blis_ba ~pool ~blocking ~mr ~nr ~kernels a b c;
    (c, Unix.gettimeofday () -. t0)
  in
  R.reset_dispatch_counts ();
  let c_serial, t_serial = run_width 1 in
  (* the fallbacks-zero gate: with the complete monomorphized table no
     tile of a full f32 GEMM may reach the closure engine *)
  let fast_calls, fallback_calls = R.ukr_dispatch_counts () in
  let native_calls_run, ba_calls_run, _ = R.ukr_tier_counts () in
  Fmt.pr "dispatch: %d monomorphized calls, %d closure fallbacks@." fast_calls
    fallback_calls;
  Fmt.pr "tier dispatch: %d native, %d bigarray, %d fallback@." native_calls_run
    ba_calls_run fallback_calls;
  if fallback_calls > 0 then
    failwith "perf-gemm: closure-engine fallbacks fired on the full GEMM run";
  (* with the native tier serving, EVERY tile of the full GEMM must
     dispatch into machine code — a Bigarray call here means a hole in the
     upgraded bank *)
  if nat_info.R.ni_enabled && native_calls_run = 0 then
    failwith "perf-gemm: native tier enabled but no native dispatches fired";
  if nat_info.R.ni_enabled && nat_info.R.ni_entries = mr * nr
     && ba_calls_run > 0 then
    failwith
      "perf-gemm: fully upgraded native bank leaked Bigarray-tier dispatches";
  (* two more serial timings: the run ledger's robust statistics
     (median / MAD noise bound) want k >= 3 samples per run *)
  let serial_samples = t_serial :: List.init 2 (fun _ -> snd (run_width 1)) in
  (* re-zero between phases: the width sweep and batch sections below get
     their own fallbacks-zero gate instead of inheriting these counts *)
  R.reset_dispatch_counts ();
  let gflops_of t =
    2.0 *. float_of_int dim *. float_of_int dim *. float_of_int dim /. t /. 1e9
  in
  let gemm_gflops = gflops_of t_serial in
  Fmt.pr "%d^3 GEMM, 1 domain : %8.2f s  (%.3f GFLOPS)@." dim t_serial gemm_gflops;
  let c_ref = M.copy c_init in
  G.naive_f32 a b c_ref;
  if not (M.equal c_serial c_ref) then
    failwith "perf-gemm: macro-kernel disagrees with naive f32 reference";
  Fmt.pr "validated exactly against naive f32@.";
  (* the previous (flat-array tape) tier on the same problem: the
     before/after of the Bigarray move, and a cross-tier bit-exactness
     check on a full GEMM *)
  let t_flat =
    let c = M.copy c_init in
    let pool = Exo_par.Pool.create ~jobs:1 () in
    let t0 = Unix.gettimeofday () in
    G.blis ~pool ~blocking ~mr ~nr ~ukr:exo_ukr a b c;
    let t = Unix.gettimeofday () -. t0 in
    if not (M.equal c c_serial) then
      failwith "perf-gemm: Bigarray and flat tiers disagree on the GEMM result";
    t
  in
  Fmt.pr "%d^3 GEMM, flat tier: %8.2f s  (%.3f GFLOPS, bigarray %.2fx)@." dim
    t_flat (gflops_of t_flat) (t_flat /. t_serial);
  (* the Bigarray tier on the same problem through the pre-upgrade bank:
     the native tier's before/after A-B — the serving (native) result must
     be bit-identical, and on a full run with the tier serving it must be
     >= 3x faster (the issue's headline gate) *)
  let t_ba_gemm =
    let c = M.copy c_init in
    let pool = Exo_par.Pool.create ~jobs:1 () in
    let t0 = Unix.gettimeofday () in
    G.blis_ba ~pool ~blocking ~mr ~nr ~kernels:(R.exo_bank_ba ~mr ~nr ()) a b c;
    let t = Unix.gettimeofday () -. t0 in
    if not (M.equal c c_serial) then
      failwith "perf-gemm: native and Bigarray tiers disagree on the GEMM result";
    t
  in
  let native_speedup = t_ba_gemm /. t_serial in
  Fmt.pr "%d^3 GEMM, ba tier  : %8.2f s  (%.3f GFLOPS, native %.2fx, \
          bit-identical)@."
    dim t_ba_gemm (gflops_of t_ba_gemm) native_speedup;
  if nat_info.R.ni_enabled && not smoke then begin
    if nat_info.R.ni_rejected > 0 then
      failwith "perf-gemm: native entries failed certification on a full run";
    if nat_info.R.ni_entries <> mr * nr then
      failwith "perf-gemm: native bank is incomplete on a full run";
    if native_speedup < 3.0 then
      failwith
        (Printf.sprintf
           "perf-gemm: native tier speedup %.2fx is below the 3x gate"
           native_speedup)
  end;
  (* the analytical nc/mc can exceed the whole problem (one task), which
     would make the width sweep vacuous — split BOTH n and m into >= 4
     blocks so the (jc × ic) task grid gives several domains real work *)
  let par_blocking =
    let quarter = (dim + 3) / 4 in
    let nc = max nr (quarter / nr * nr) in
    let mc = max mr (quarter / mr * mr) in
    { blocking with Exo_blis.Analytical.nc; mc }
  in
  let par_tasks =
    ((dim + par_blocking.Exo_blis.Analytical.nc - 1)
    / par_blocking.Exo_blis.Analytical.nc)
    * ((dim + par_blocking.Exo_blis.Analytical.mc - 1)
      / par_blocking.Exo_blis.Analytical.mc)
  in
  let run_par jobs =
    let c = M.copy c_init in
    let pool = Exo_par.Pool.create ~jobs () in
    let t0 = Unix.gettimeofday () in
    G.blis_ba ~pool ~blocking:par_blocking ~mr ~nr ~kernels a b c;
    (c, Unix.gettimeofday () -. t0)
  in
  let c_par1, t_par1 = run_par 1 in
  (* nc/mc only tile the output space — they never reorder any element's
     accumulation — so the split run must still match the reference *)
  if not (M.equal c_par1 c_ref) then
    failwith "perf-gemm: block-split blocking changed the result";
  Fmt.pr "width sweep over a %d-task (jc x ic) grid@." par_tasks;
  let par_times, jobs_identical =
    List.fold_left
      (fun (times, ok) jobs ->
        let c, t = run_par jobs in
        let same = M.equal c c_par1 in
        Fmt.pr "%d^3 GEMM, %d domains: %7.2f s  (%.2fx)  %s@." dim jobs t
          (t_par1 /. t)
          (if same then "(bit-identical)" else "(MISMATCH)");
        (times @ [ (jobs, t) ], ok && same))
      ([ (1, t_par1) ], true)
      [ 2; 4 ]
  in
  if not jobs_identical then
    failwith "perf-gemm: pool widths disagree on the GEMM result";
  (* 3. jobs invariance on a small-n GEMM (ResNet50 layer 2: a 1x1 conv's
     im2row shape, n = 64 « the analytical nc): the jc-only split yields a
     single task here, so this exercises — and pins — the ic fan-out *)
  let sn_m, sn_n, sn_k =
    let l2 = List.nth W.resnet50 1 in
    let m, n, k = W.gemm_dims l2 in
    if smoke then (min m 784, n, k) else (m, n, k)
  in
  let sn_blocking =
    (* nc covers all of n (the jc axis degenerates to one block); mc
       quarters m so the task grid still has >= 4 cells *)
    let mc = max mr ((sn_m + 3) / 4 / mr * mr) in
    { blocking with Exo_blis.Analytical.mc; nc = max nr sn_n }
  in
  let sn_jc = (sn_n + sn_blocking.Exo_blis.Analytical.nc - 1)
              / sn_blocking.Exo_blis.Analytical.nc in
  let sn_ic = (sn_m + sn_blocking.Exo_blis.Analytical.mc - 1)
              / sn_blocking.Exo_blis.Analytical.mc in
  if sn_jc <> 1 || sn_ic < 2 then
    failwith "perf-gemm: small-n shape does not exercise the ic fan-out";
  let sn_a = M.random_int sn_m sn_k st and sn_b = M.random_int sn_k sn_n st in
  let sn_c_init = M.random_int sn_m sn_n st in
  let run_small jobs =
    let c = M.copy sn_c_init in
    let pool = Exo_par.Pool.create ~jobs () in
    let t0 = Unix.gettimeofday () in
    G.blis_ba ~pool ~blocking:sn_blocking ~mr ~nr ~kernels sn_a sn_b c;
    (c, Unix.gettimeofday () -. t0)
  in
  let sn_ref = M.copy sn_c_init in
  G.naive_f32 sn_a sn_b sn_ref;
  let sn_c1, sn_t1 = run_small 1 in
  if not (M.equal sn_c1 sn_ref) then
    failwith "perf-gemm: small-n GEMM disagrees with naive f32 reference";
  let sn_times, sn_identical =
    List.fold_left
      (fun (times, ok) jobs ->
        let c, t = run_small jobs in
        (times @ [ (jobs, t) ], ok && M.equal c sn_c1))
      ([ (1, sn_t1) ], true)
      [ 2; 4 ]
  in
  Fmt.pr
    "small-n GEMM %dx%dx%d (ResNet50 layer 2), %d ic-tasks: %s at widths \
     1/2/4@."
    sn_m sn_n sn_k sn_ic
    (if sn_identical then "bit-identical" else "MISMATCH");
  if not sn_identical then
    failwith "perf-gemm: pool widths disagree on the small-n GEMM result";
  (* 4. a DNN workload slice through Gemm.batch_ba: one arena + one pool
     for the whole layer list *)
  let layers =
    let by_flops =
      List.sort
        (fun l1 l2 ->
          let f (l : W.layer) = let m, n, k = W.gemm_dims l in m * n * k in
          compare (f l1) (f l2))
        W.resnet50
    in
    List.filteri (fun i _ -> i < if smoke then 2 else 5) by_flops
  in
  let probs =
    List.map
      (fun (l : W.layer) ->
        let m, n, k = W.gemm_dims l in
        let a = M.random_int m k st and b = M.random_int k n st in
        let c = M.random_int m n st in
        ( l,
          {
            G.p_a = a;
            p_b = b;
            p_c = c;
            p_alpha = 1.0;
            p_beta = 1.0;
            p_blocking = blocking;
            p_mr = mr;
            p_nr = nr;
          } ))
      layers
  in
  let ws = G.workspace () in
  let t0 = Unix.gettimeofday () in
  G.batch_ba ~ws ~kernels (List.map snd probs);
  let t_batch = Unix.gettimeofday () -. t0 in
  let batch_rows =
    List.map
      (fun ((l : W.layer), (p : G.problem)) ->
        let m, n, k = W.gemm_dims l in
        let flops = 2.0 *. float_of_int (m * n * k) in
        (* per-layer share of the batch time, apportioned by flops *)
        ignore p;
        (l.W.id, m, n, k, flops))
      probs
  in
  let batch_flops = List.fold_left (fun s (_, _, _, _, f) -> s +. f) 0.0 batch_rows in
  let batch_gflops = batch_flops /. t_batch /. 1e9 in
  Fmt.pr "ResNet50 slice (%d layers) via Gemm.batch: %.2f s  (%.3f GFLOPS)@."
    (List.length layers) t_batch batch_gflops;
  (* the post-reset phases (width sweeps, small-n, batch) get the same
     fallbacks-zero gate as the serial run *)
  let _, phase2_fallback = R.ukr_dispatch_counts () in
  if phase2_fallback > 0 then
    failwith
      "perf-gemm: closure-engine fallbacks fired in the sweep/batch phases";
  (* 5. measured-vs-model attribution for the run ledger: the analytical
     kernel model's predicted solo GFLOPS and machine peak, the cache
     simulator's DRAM-traffic prediction under this blocking, and a traced
     serial run's per-phase span breakdown *)
  let module KM = Exo_sim.Kernel_model in
  let module CS = Exo_sim.Cache_sim in
  let module Obs = Exo_obs.Obs in
  let impl = R.exo_impl ~mr ~nr () in
  let model_gflops =
    KM.solo_gflops machine impl ~mu:mr ~nu:nr
      ~kc:blocking.Exo_blis.Analytical.kc
  in
  let model_peak = KM.peak machine impl in
  let sim_stats =
    CS.gemm_trace machine ~mc:blocking.Exo_blis.Analytical.mc
      ~kc:blocking.Exo_blis.Analytical.kc ~nc:blocking.Exo_blis.Analytical.nc
      ~mr ~nr ~m:dim ~n:dim ~k:dim
  in
  let sim_dram_mb =
    float_of_int (CS.dram_traffic_bytes machine sim_stats) /. 1e6
  in
  let phases =
    (* one traced serial run; this clobbers any ambient -profile trace,
       which is acceptable — CI never combines -profile with perf-gemm *)
    let was_enabled = Obs.enabled () in
    Obs.reset ();
    Obs.enable ();
    ignore (run_width 1);
    if not was_enabled then Obs.disable ();
    let totals = Obs.Export.span_totals (Obs.drain ()) in
    let tot name =
      match List.assoc_opt name totals with Some (_, t, _) -> t | None -> 0.0
    in
    let self name =
      match List.assoc_opt name totals with Some (_, _, s) -> s | None -> 0.0
    in
    let pack_a = tot "gemm.pack_a" and pack_b = tot "gemm.pack_b" in
    let other =
      Float.max 0.0
        (tot "gemm.blis_ba" -. pack_a -. pack_b -. tot "gemm.macro_kernel")
    in
    [
      ("pack_a", pack_a);
      ("pack_b", pack_b);
      ("macro", self "gemm.macro_kernel");
      ("ukr", tot "gemm.ukr");
      ("other", other);
    ]
  in
  let best_gflops =
    List.fold_left (fun acc t -> Float.max acc (gflops_of t)) 0.0 serial_samples
  in
  Fmt.pr
    "attribution: measured %.3f GFLOPS | model %.2f GFLOPS (eff %.4f) | peak \
     %.2f GFLOPS | sim DRAM %.1f MB@."
    best_gflops model_gflops
    (best_gflops /. model_gflops)
    model_peak sim_dram_mb;
  Fmt.pr "phase breakdown (traced serial run): %s@."
    (String.concat ", "
       (List.map (fun (n, s) -> Printf.sprintf "%s %.3fs" n s) phases));
  (* the width sweeps go up to 4 domains whatever the host has: flag runs
     where width 4 was oversubscribed, whose seconds_by_width timings
     measure scheduling pressure rather than parallel speedup *)
  let host_cores = Domain.recommended_domain_count () in
  let oversubscribed = host_cores < 4 in
  let oc = open_out "BENCH_gemm.json" in
  Printf.fprintf oc
    "{\n\
    \  %s,\n\
    \  \"smoke\": %b,\n\
    \  \"ukr\": {\n\
    \    \"kernel\": \"uk_%dx%d_neon-f32\",\n\
    \    \"kc\": %d,\n\
    \    \"closure_us_per_call\": %.3f,\n\
    \    \"specialized_us_per_call\": %.3f,\n\
    \    \"speedup\": %.2f,\n\
    \    \"bigarray_us_per_call\": %.3f,\n\
    \    \"bigarray_speedup\": %.2f\n\
    \  },\n\
    \  \"native\": {\n\
    \    \"native_enabled\": %b,\n\
    \    \"target\": %S,\n\
    \    \"cc\": %S,\n\
    \    \"isa\": %S,\n\
    \    \"entries\": %d,\n\
    \    \"rejected\": %d,\n\
    \    \"reason\": %S,\n\
    \    \"native_us_per_call\": %.3f,\n\
    \    \"native_calls\": %d,\n\
    \    \"bigarray_seconds_1job\": %.3f,\n\
    \    \"speedup_vs_bigarray\": %.2f,\n\
    \    \"bit_exact_vs_bigarray\": true\n\
    \  },\n\
    \  \"tierlint\": {\n\
    \    \"proved\": %d,\n\
    \    \"total\": %d,\n\
    \    \"probe_disagreements\": %d,\n\
    \    \"registry_certified\": %b\n\
    \  },\n\
    \  \"gemm\": {\n\
    \    \"dim\": %d,\n\
    \    \"blocking\": [%d, %d, %d],\n\
    \    \"seconds_1job\": %.3f,\n\
    \    \"gflops_1job\": %.4f,\n\
    \    \"flat_seconds_1job\": %.3f,\n\
    \    \"flat_gflops_1job\": %.4f,\n\
    \    \"speedup_vs_flat\": %.2f,\n\
    \    \"fast_calls\": %d,\n\
    \    \"fallback_calls\": %d,\n\
    \    \"sweep_batch_fallback_calls\": %d,\n\
    \    \"validated_vs_naive_f32\": true\n\
    \  },\n\
    \  \"jobs_invariance\": {\n\
    \    \"nc_split\": %d,\n\
    \    \"mc_split\": %d,\n\
    \    \"tasks\": %d,\n\
    \    \"host_cores\": %d,\n\
    \    \"oversubscribed\": %b,\n\
    \    \"seconds_by_width\": {%s},\n\
    \    \"identical\": %b\n\
    \  },\n\
    \  \"small_n\": {\n\
    \    \"layer\": \"resnet50 layer 2\",\n\
    \    \"m\": %d,\n\
    \    \"n\": %d,\n\
    \    \"k\": %d,\n\
    \    \"jc_tasks\": %d,\n\
    \    \"ic_tasks\": %d,\n\
    \    \"host_cores\": %d,\n\
    \    \"oversubscribed\": %b,\n\
    \    \"seconds_by_width\": {%s},\n\
    \    \"jobs_identical\": %b,\n\
    \    \"small_n_validated_vs_naive_f32\": true\n\
    \  },\n\
    \  \"batch\": {\n\
    \    \"model\": \"resnet50\",\n\
    \    \"tier\": \"bigarray\",\n\
    \    \"layers\": [%s],\n\
    \    \"seconds\": %.3f,\n\
    \    \"gflops\": %.4f\n\
    \  }\n\
     }\n"
    (meta_json ()) smoke mr nr kc (t_closure *. 1e6) (t_fast *. 1e6) ukr_speedup
    (t_ba *. 1e6) ba_speedup nat_info.R.ni_enabled nat_info.R.ni_target
    nat_info.R.ni_cc
    (match Exo_native.Host.isas () with
    | [] -> "generic"
    | l -> String.concat "," (List.map Exo_native.Host.isa_name l))
    nat_info.R.ni_entries nat_info.R.ni_rejected nat_info.R.ni_reason
    (t_native_ukr *. 1e6) native_calls_run t_ba_gemm native_speedup
    tk.L.tk_proved tk.L.tk_total tk.L.tk_disagreements
    reg_certified dim blocking.Exo_blis.Analytical.mc
    blocking.Exo_blis.Analytical.kc blocking.Exo_blis.Analytical.nc t_serial
    gemm_gflops t_flat (gflops_of t_flat) (t_flat /. t_serial) fast_calls
    fallback_calls phase2_fallback par_blocking.Exo_blis.Analytical.nc
    par_blocking.Exo_blis.Analytical.mc par_tasks host_cores oversubscribed
    (String.concat ", "
       (List.map (fun (j, t) -> Printf.sprintf "\"%d\": %.3f" j t) par_times))
    jobs_identical sn_m sn_n sn_k sn_jc sn_ic host_cores oversubscribed
    (String.concat ", "
       (List.map (fun (j, t) -> Printf.sprintf "\"%d\": %.3f" j t) sn_times))
    sn_identical
    (String.concat ", "
       (List.map
          (fun (id, m, n, k, _) ->
            Printf.sprintf "{\"id\": %d, \"m\": %d, \"n\": %d, \"k\": %d}" id m n k)
          batch_rows))
    t_batch batch_gflops;
  close_out oc;
  ledger_append ~bench:(if smoke then "perf-gemm-smoke" else "perf-gemm")
    ([
       Ledger.metric_of_samples ~unit_:"GFLOPS" Ledger.Higher "gemm.gflops_1job"
         (List.map gflops_of serial_samples);
       Ledger.metric ~unit_:"us" Ledger.Lower "ukr.bigarray_us_per_call"
         (t_ba *. 1e6);
       Ledger.metric ~unit_:"s" Ledger.Info "gemm.bigarray_seconds_1job"
         t_ba_gemm;
       Ledger.metric ~unit_:"us" Ledger.Info "ukr.specialized_us_per_call"
         (t_fast *. 1e6);
       Ledger.metric ~unit_:"GFLOPS" Ledger.Info "batch.gflops" batch_gflops;
       Ledger.metric Ledger.Info "attr.dim" (float_of_int dim);
       Ledger.metric ~unit_:"GFLOPS" Ledger.Info "attr.measured_gflops"
         best_gflops;
       Ledger.metric ~unit_:"GFLOPS" Ledger.Info "attr.model_gflops"
         model_gflops;
       Ledger.metric ~unit_:"GFLOPS" Ledger.Info "attr.model_peak_gflops"
         model_peak;
       Ledger.metric ~unit_:"MB" Ledger.Info "attr.sim_dram_mb" sim_dram_mb;
     ]
    @ (if nat_info.R.ni_enabled then
         [
           Ledger.metric ~unit_:"x" Ledger.Higher
             "gemm.native_speedup_vs_bigarray" native_speedup;
           Ledger.metric ~unit_:"us" Ledger.Lower "ukr.native_us_per_call"
             (t_native_ukr *. 1e6);
         ]
       else [])
    @ List.map
        (fun (n, s) ->
          Ledger.metric ~unit_:"s" Ledger.Info ("attr.phase." ^ n) s)
        phases);
  Fmt.pr "wrote BENCH_gemm.json@.@."

(* ------------------------------------------------------------------ *)
(* perf-serve: cold-start elimination. Measures (a) the cold kernel-    *)
(* table build against a rebuild hydrated from the content-addressed    *)
(* persistent store — every hydrated executor must be bit-identical to  *)
(* the freshly compiled one and re-prove under tierlint — and the       *)
(* tuner-sweep ranking surviving an in-memory-memo wipe from disk;      *)
(* (b) warm kernel-request latency against a live ukrgen-serve daemon   *)
(* (concurrent clients, per-request Obs spans) vs a cold one-shot       *)
(* ukrgen subprocess, gated at >= 50x. Writes BENCH_serve.json.         *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let run_perf_serve ?(smoke = false) () =
  let module R = Exo_blis.Registry in
  let module Store = Exo_cache.Store in
  let module L = Exo_ukr_gen.Lint in
  let module Serve = Exo_serve.Serve in
  let module Obs = Exo_obs.Obs in
  let machine = Exo_isa.Machine.carmel in
  let mr = 8 and nr = 12 in
  Fmt.pr "Serve & persistent-cache benchmark%s@." (if smoke then " (smoke)" else "");
  Fmt.pr "%s@." (String.make 78 '-');
  (* a private store: the bench must not read or pollute the user's *)
  let cache_root = Filename.temp_file "ukrgen-bench-cache" "" in
  Sys.remove cache_root;
  Store.set_ambient (Some cache_root);
  Fun.protect ~finally:(fun () ->
      Store.set_ambient None;
      rm_rf cache_root)
  @@ fun () ->
  (* 1. cold build: schedule + certify + lower all 96 entries, publishing
     one artifact per entry as it goes *)
  Store.reset_counts ();
  let t0 = Unix.gettimeofday () in
  let table_cold = R.exo_table ~mr ~nr () in
  let t_cold_build = Unix.gettimeofday () -. t0 in
  let cold_hits, cold_misses = Store.hit_miss_counts () in
  let cold_writes, _ = Store.write_counts () in
  Fmt.pr "cold table build    : %8.3f s  (%d misses, %d artifacts written)@."
    t_cold_build cold_misses cold_writes;
  (* 2. hydrated rebuild: wipe every in-memory memo, rebuild from disk *)
  R.clear_memos_for_bench ();
  Store.reset_counts ();
  let t0 = Unix.gettimeofday () in
  let table_warm = R.exo_table ~mr ~nr () in
  let t_warm_build = Unix.gettimeofday () -. t0 in
  let warm_hits, warm_misses = Store.hit_miss_counts () in
  let warm_writes, _ = Store.write_counts () in
  let build_speedup = t_cold_build /. t_warm_build in
  Fmt.pr "hydrated table build: %8.3f s  (%d hits, %d misses; %.1fx)@."
    t_warm_build warm_hits warm_misses build_speedup;
  if warm_hits = 0 || warm_misses > 0 then
    failwith "perf-serve: hydrated rebuild missed the persistent cache";
  if warm_writes > 0 then
    failwith "perf-serve: hydrated rebuild re-published artifacts";
  (* correctness gate A: every hydrated executor bit-identical to the
     freshly compiled one, on every (mr' x nr') entry *)
  let mk_ba st n =
    let b = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
    for x = 0 to n - 1 do
      Bigarray.Array1.set b x (float_of_int (Random.State.int st 7 - 3))
    done;
    b
  in
  let kc_chk = 16 in
  for i = 1 to mr do
    for j = 1 to nr do
      let st = Random.State.make [| i; j; kc_chk |] in
      let ac = mk_ba st (kc_chk * i) and bc = mk_ba st (kc_chk * j) in
      let c_cold = mk_ba st (i * j) in
      let c_warm = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout (i * j) in
      Bigarray.Array1.blit c_cold c_warm;
      (R.table_entry table_cold ~mr:i ~nr:j)
        ~kc:kc_chk ~ac ~ao:0 ~bc ~bo:0 ~c:c_cold ~co:0;
      (R.table_entry table_warm ~mr:i ~nr:j)
        ~kc:kc_chk ~ac ~ao:0 ~bc ~bo:0 ~c:c_warm ~co:0;
      for x = 0 to (i * j) - 1 do
        if
          not
            (Float.equal
               (Bigarray.Array1.get c_cold x)
               (Bigarray.Array1.get c_warm x))
        then
          failwith
            (Printf.sprintf
               "perf-serve: hydrated %dx%d executor diverges from the fresh one"
               i j)
      done
    done
  done;
  Fmt.pr "hydrated executors bit-identical to freshly compiled, all %d entries@."
    (mr * nr);
  (* correctness gate B: the hydrated table's static certification is
     intact — tierlint re-proves all 96 entries and the table agrees *)
  let tiers = L.run_tiers ~kits:[ Exo_ukr_gen.Kits.neon_f32 ] ~jobs:1 ~mr ~nr () in
  let tk = List.hd tiers.L.tier_kits in
  if not (L.tiers_ok tiers) || tk.L.tk_proved <> tk.L.tk_total then
    failwith "perf-serve: tierlint failed on the hydrated build";
  if not (Array.for_all Fun.id table_warm.R.t_proved) then
    failwith "perf-serve: hydrated table entry without a static certificate";
  Fmt.pr "tierlint on the hydrated build: proved %d/%d@." tk.L.tk_proved
    tk.L.tk_total;
  (* 3. tuner-sweep persistence: wipe the in-memory memo, re-rank from disk *)
  let tm, tn, tkk = if smoke then (96, 96, 96) else (784, 512, 256) in
  Exo_blis.Tuner.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let rank_cold = Exo_blis.Tuner.sweep machine ~m:tm ~n:tn ~k:tkk in
  let t_tuner_cold = Unix.gettimeofday () -. t0 in
  Exo_blis.Tuner.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let rank_disk = Exo_blis.Tuner.sweep machine ~m:tm ~n:tn ~k:tkk in
  let t_tuner_disk = Unix.gettimeofday () -. t0 in
  if rank_cold <> rank_disk then
    failwith "perf-serve: persisted tuner ranking differs from the fresh sweep";
  Fmt.pr "tuner sweep %dx%dx%d: fresh %.1f ms, from disk %.1f ms, ranking \
          identical@."
    tm tn tkk (t_tuner_cold *. 1e3) (t_tuner_disk *. 1e3);
  let kernel_entries, family_entries, tuner_entries =
    match Store.ambient () with
    | Some st ->
        ( Store.entry_count st ~kind:"kernel",
          Store.entry_count st ~kind:"family",
          Store.entry_count st ~kind:"tuner" )
    | None -> (0, 0, 0)
  in
  (* 4. the daemon: start it in-process (registry already warm), then
     measure warm kernel-request round-trips *)
  let socket = Filename.temp_file "ukrgen-bench-serve" ".sock" in
  let workers = 2 in
  let t0 = Unix.gettimeofday () in
  let srv = Serve.start ~workers ~socket () in
  let t_daemon_start = Unix.gettimeofday () -. t0 in
  Fun.protect ~finally:(fun () ->
      Serve.stop srv;
      Serve.wait srv)
  @@ fun () ->
  Serve.reset_request_counts ();
  let gen_req = "GENERATE neon-f32 8x12" in
  let round_trip req =
    let t0 = Unix.gettimeofday () in
    let status, _ = Serve.Client.request ~socket req in
    let dt = Unix.gettimeofday () -. t0 in
    if not (Serve.Client.ok status) then
      failwith (Printf.sprintf "perf-serve: daemon rejected %S: %s" req status);
    dt
  in
  ignore (round_trip "PING");
  let warm_requests = if smoke then 10 else 50 in
  let warm_total = ref 0.0 and warm_min = ref infinity in
  let warm_samples = ref [] in
  for _ = 1 to warm_requests do
    let dt = round_trip gen_req in
    warm_samples := dt :: !warm_samples;
    warm_total := !warm_total +. dt;
    if dt < !warm_min then warm_min := dt
  done;
  let warm_mean = !warm_total /. float_of_int warm_requests in
  Fmt.pr "warm GENERATE round-trip: mean %.3f ms, min %.3f ms over %d requests@."
    (warm_mean *. 1e3) (!warm_min *. 1e3) warm_requests;
  (* concurrent clients: every request must still succeed *)
  let burst_clients = 4 and burst_each = if smoke then 5 else 10 in
  let burst_ok =
    List.init burst_clients (fun _ ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to burst_each do
              let status, _ = Serve.Client.request ~socket gen_req in
              if not (Serve.Client.ok status) then ok := false
            done;
            !ok))
    |> List.for_all Domain.join
  in
  if not burst_ok then
    failwith "perf-serve: a concurrent client request failed";
  Fmt.pr "%d concurrent clients x %d requests: all OK@." burst_clients burst_each;
  (* per-request Obs spans: one traced request must surface a
     serve.request span from the worker domain *)
  Obs.reset ();
  Obs.enable ();
  ignore (round_trip "STATS");
  Unix.sleepf 0.05;
  Obs.disable ();
  let span_observed =
    List.exists
      (fun (e : Obs.event) -> e.Obs.e_name = "serve.request")
      (Obs.drain ()).Obs.events
  in
  if not span_observed then
    failwith "perf-serve: no serve.request span recorded for a traced request";
  let req_total, req_errors, _ = Serve.request_counts () in
  (* 5. the cold baseline: a one-shot ukrgen subprocess generating the
     same kernel with no daemon and no cache *)
  let ukrgen_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/ukrgen.exe"
  in
  let cold_mode, t_cold_oneshot =
    if Sys.file_exists ukrgen_exe then begin
      let once () =
        let cmd =
          Printf.sprintf
            "env -u UKRGEN_CACHE_DIR %s generate --kit neon-f32 --mr 8 --nr 12 \
             > /dev/null 2>&1"
            (Filename.quote ukrgen_exe)
        in
        let t0 = Unix.gettimeofday () in
        (match Unix.system cmd with
        | Unix.WEXITED 0 -> ()
        | _ -> failwith "perf-serve: cold one-shot ukrgen failed");
        Unix.gettimeofday () -. t0
      in
      let best = ref infinity in
      for _ = 1 to if smoke then 2 else 3 do
        let t = once () in
        if t < !best then best := t
      done;
      ("subprocess", !best)
    end
    else begin
      (* no ukrgen.exe next to the bench: an in-process fresh generate is
         the (conservative — no exec/link cost) cold baseline *)
      let t0 = Unix.gettimeofday () in
      ignore (Exo_ukr_gen.Family.generate ~kit:Exo_ukr_gen.Kits.neon_f32 ~mr ~nr ());
      ("in-process", Unix.gettimeofday () -. t0)
    end
  in
  (* gate on the latency floor (best round-trip): on an oversubscribed
     1-core container the mean is dominated by scheduler noise between the
     worker domains and the client, not by request cost — the min is the
     reproducible number. Both are recorded in the JSON. *)
  let warm_vs_cold = t_cold_oneshot /. !warm_min in
  Fmt.pr
    "cold one-shot (%s): %.1f ms; warm daemon request %.3f ms mean / %.3f ms \
     min — %.0fx@."
    cold_mode (t_cold_oneshot *. 1e3) (warm_mean *. 1e3) (!warm_min *. 1e3)
    warm_vs_cold;
  if warm_vs_cold < 50.0 then
    failwith "perf-serve: warm requests are not >= 50x faster than cold one-shots";
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  %s,\n\
    \  \"smoke\": %b,\n\
    \  \"cache\": {\n\
    \    \"entries\": {\"kernel\": %d, \"family\": %d, \"tuner\": %d},\n\
    \    \"cold_build_seconds\": %.3f,\n\
    \    \"cold_hits\": %d,\n\
    \    \"cold_misses\": %d,\n\
    \    \"cold_writes\": %d,\n\
    \    \"hydrated_build_seconds\": %.3f,\n\
    \    \"hydrated_hits\": %d,\n\
    \    \"hydrated_misses\": %d,\n\
    \    \"build_speedup\": %.2f,\n\
    \    \"hydrated_bit_identical\": true,\n\
    \    \"tierlint_proved\": %d,\n\
    \    \"tierlint_total\": %d,\n\
    \    \"tuner_fresh_seconds\": %.4f,\n\
    \    \"tuner_disk_seconds\": %.4f,\n\
    \    \"tuner_ranking_identical\": true\n\
    \  },\n\
    \  \"serve\": {\n\
    \    \"workers\": %d,\n\
    \    \"daemon_start_seconds\": %.3f,\n\
    \    \"warm_requests\": %d,\n\
    \    \"warm_mean_seconds\": %.6f,\n\
    \    \"warm_min_seconds\": %.6f,\n\
    \    \"concurrent_clients\": %d,\n\
    \    \"concurrent_requests_each\": %d,\n\
    \    \"concurrent_ok\": %b,\n\
    \    \"request_span_observed\": %b,\n\
    \    \"requests_total\": %d,\n\
    \    \"request_errors\": %d\n\
    \  },\n\
    \  \"cold_oneshot_mode\": %S,\n\
    \  \"cold_oneshot_seconds\": %.4f,\n\
    \  \"warm_vs_cold_speedup\": %.1f\n\
     }\n"
    (meta_json ()) smoke kernel_entries family_entries tuner_entries
    t_cold_build cold_hits cold_misses cold_writes t_warm_build warm_hits
    warm_misses build_speedup tk.L.tk_proved tk.L.tk_total t_tuner_cold
    t_tuner_disk workers t_daemon_start warm_requests warm_mean !warm_min
    burst_clients burst_each burst_ok span_observed req_total req_errors
    cold_mode t_cold_oneshot warm_vs_cold;
  close_out oc;
  ledger_append ~bench:(if smoke then "perf-serve-smoke" else "perf-serve")
    [
      Ledger.metric_of_samples ~unit_:"us" Ledger.Lower "serve.warm_rt_us"
        (List.map (fun t -> t *. 1e6) !warm_samples);
      Ledger.metric ~unit_:"x" Ledger.Higher "serve.warm_vs_cold_speedup"
        warm_vs_cold;
      Ledger.metric ~unit_:"s" Ledger.Info "cache.hydrated_build_seconds"
        t_warm_build;
      Ledger.metric ~unit_:"x" Ledger.Info "cache.build_speedup" build_speedup;
    ];
  Fmt.pr "wrote BENCH_serve.json@.@."

(* ------------------------------------------------------------------ *)
(* lint: the static Fig. 12 gate — every generated kernel must carry    *)
(* its bounds certificate, fit the register file, match the expected    *)
(* steady-state census and write only C. Exits 1 on any failure.        *)

let run_lint () =
  let module L = Exo_ukr_gen.Lint in
  Fmt.pr "Static kernel lint (Fig. 12 properties, no simulation)@.";
  Fmt.pr "%s@." (String.make 78 '-');
  let o = L.run () in
  Fmt.pr "%a@.@." L.pp_outcome o;
  if not (L.all_ok o) then begin
    Fmt.epr "lint gate FAILED: %d kernel(s)@." (L.failures o);
    exit 1
  end

let () =
  let module Obs = Exo_obs.Obs in
  (* global flags: [-j N] fixes the domain-pool width for every parallel
     sweep in this run (default: EXO_JOBS or the core count); [-profile]
     records obs spans/counters during the run and prints the profile
     report at the end; [-ledger FILE] appends one run-ledger record per
     perf subcommand (default: $UKRGEN_LEDGER, else no ledger) *)
  let args = Array.to_list Sys.argv |> List.tl in
  let profile = ref false in
  ledger_path := Ledger.env_path ();
  let rec parse_flags acc = function
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j -> Exo_par.Pool.set_default_jobs j
        | None ->
            Fmt.epr "-j expects an integer, got %S@." n;
            exit 2);
        parse_flags acc rest
    | "-profile" :: rest ->
        profile := true;
        parse_flags acc rest
    | "-ledger" :: path :: rest ->
        ledger_path := Some path;
        parse_flags acc rest
    | a :: rest -> parse_flags (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = parse_flags [] args in
  if !profile then begin
    Obs.reset ();
    Obs.enable ()
  end;
  let report_profile () =
    if !profile then begin
      Obs.disable ();
      Fmt.pr "%s@?" (Obs.Export.text_report (Obs.drain ()))
    end
  in
  at_exit report_profile;
  let run = function
    | "fig12" -> Experiments.fig12 ()
    | "fig13" -> Experiments.fig13 ()
    | "fig14" -> Experiments.fig14 ()
    | "tab1" -> Experiments.tab1 ()
    | "tab2" -> Experiments.tab2 ()
    | "fig15" -> Experiments.fig15 ()
    | "fig16" -> Experiments.fig16 ()
    | "fig17" -> Experiments.fig17 ()
    | "fig18" -> Experiments.fig18 ()
    | "ablation" -> Experiments.ablation ()
    | "bechamel" -> run_bechamel ()
    | "perf" -> run_perf ()
    | "perf-sim" -> run_perf_sim ()
    | "perf-sim-smoke" -> run_perf_sim ~smoke:true ()
    | "perf-gemm" -> run_perf_gemm ()
    | "perf-gemm-smoke" -> run_perf_gemm ~smoke:true ()
    | "perf-serve" -> run_perf_serve ()
    | "perf-serve-smoke" -> run_perf_serve ~smoke:true ()
    | "lint" -> run_lint ()
    | "all" ->
        run_lint ();
        Experiments.all ();
        run_bechamel ()
    | other ->
        Fmt.epr
          "unknown experiment %S (expected figNN, tabN, ablation, bechamel, perf, \
           perf-sim[-smoke], perf-gemm[-smoke], perf-serve[-smoke], lint, all)@."
          other;
        exit 2
  in
  match args with [] -> run "all" | l -> List.iter run l
